"""Taxonomy accuracy×delay matrix bench: the full attacker sweep, pinned.

Runs :func:`repro.eval.taxonomy.run_taxonomy_matrix` over every attacker
class — type-0, type-1, type-2 (the deepest forgeable tail on this
world), type-U, squatting, route-leak — plus the benign false-positive
suite with and without data-plane corroboration, and guards:

* **accuracy** — every class must be caught by its matching rule (all
  cells TP: no misclassifications, no misses);
* **per-class detection delay** — simulated seconds, deterministic per
  seed, bounded per class;
* **zero false positives** with corroboration, and the exact expected
  rule firings without it;
* **wall-clock** — the whole sweep under ``TAXONOMY_MAX_WALL`` host
  seconds (0 disables; the CI smoke job pins this).

``BENCH_taxonomy.json`` (next to this file) records the matrix;
regenerate with::

    TAXONOMY_BENCH_WRITE=1 PYTHONPATH=src \
        python -m pytest benchmarks/test_taxonomy.py -s --benchmark-only

Environment knobs:

``TAXONOMY_BENCH_SEEDS``
    Comma-separated experiment seeds per class (default "11").
``TAXONOMY_MAX_WALL``
    Host-seconds ceiling for the full sweep (default 0 = disabled).
``TAXONOMY_BENCH_WRITE``
    Write ``BENCH_taxonomy.json`` when set to 1.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from conftest import run_once
from repro.eval.taxonomy import (
    TAXONOMY,
    run_false_positive_suite,
    run_taxonomy_matrix,
)

_BENCH_JSON = os.path.join(os.path.dirname(__file__), "BENCH_taxonomy.json")

SEEDS = tuple(
    int(s)
    for s in os.environ.get("TAXONOMY_BENCH_SEEDS", "11").split(",")
    if s.strip()
)
MAX_WALL = float(os.environ.get("TAXONOMY_MAX_WALL", "0"))

#: Simulated-seconds detection ceiling per class (see tests/test_taxonomy.py).
DELAY_BOUNDS = {
    "type-0": 10.0,
    "type-1": 10.0,
    "type-2": 60.0,
    "type-U": 10.0,
    "squatting": 10.0,
    "route-leak": 60.0,
}


@pytest.mark.slow
def test_taxonomy_matrix_accuracy_and_delay(benchmark):
    started = time.perf_counter()
    matrix = run_once(benchmark, lambda: run_taxonomy_matrix(seeds=SEEDS))
    wall = time.perf_counter() - started

    assert matrix["accuracy"] == 1.0, matrix["per_class"]
    for hijack_type, stats in matrix["per_class"].items():
        assert stats["tp"] == stats["runs"], (hijack_type, stats)
        assert stats["misclassified"] == 0 and stats["fn"] == 0
        assert stats["mitigated"] == stats["runs"]
        assert stats["detection_delay_max"] <= DELAY_BOUNDS[hijack_type], (
            hijack_type,
            stats,
        )

    fp_with = run_false_positive_suite(corroborate=True)
    fp_without = run_false_positive_suite(corroborate=False)
    assert fp_with["total_false_positives"] == 0, fp_with
    # Without corroboration exactly the two gated look-alikes page.
    fired = {
        s["name"]: s["alert_types"] for s in fp_without["scenarios"]
    }
    assert fired == {
        "legit-moas": ["exact-origin"],
        "new-peering": ["path"],
        "benign-deaggregation": [],
    }

    if MAX_WALL:
        assert wall <= MAX_WALL, f"taxonomy sweep took {wall:.1f}s > {MAX_WALL}s"

    table = {
        "seeds": list(SEEDS),
        "per_class": matrix["per_class"],
        "cells": matrix["cells"],
        "accuracy": matrix["accuracy"],
        "false_positives": {
            "corroborated": fp_with,
            "control_plane_only": fp_without,
        },
    }
    benchmark.extra_info["taxonomy"] = table
    print(
        "\ntaxonomy matrix:",
        json.dumps(
            {
                k: {
                    "tp": v["tp"],
                    "runs": v["runs"],
                    "delay_mean": v["detection_delay_mean"],
                }
                for k, v in matrix["per_class"].items()
            },
            indent=1,
        ),
    )
    if os.environ.get("TAXONOMY_BENCH_WRITE") == "1":
        with open(_BENCH_JSON, "w", encoding="utf-8") as handle:
            json.dump(table, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {_BENCH_JSON}")


@pytest.mark.slow
def test_bench_json_matches_taxonomy():
    """The committed BENCH numbers must cover every taxonomy class."""
    with open(_BENCH_JSON, encoding="utf-8") as handle:
        recorded = json.load(handle)
    assert set(recorded["per_class"]) == set(TAXONOMY)
    assert recorded["accuracy"] == 1.0
    assert (
        recorded["false_positives"]["corroborated"]["total_false_positives"] == 0
    )
    for hijack_type, stats in recorded["per_class"].items():
        assert stats["expected_alert"] == TAXONOMY[hijack_type]
        assert stats["detection_delay_mean"] is not None
