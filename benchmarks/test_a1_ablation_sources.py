"""A1 — ablation of the multi-source combination (design choice, §2).

ARTEMIS combines Periscope + RIS + BGPmon so the detection delay is the min
over sources.  This ablation removes one source at a time *at the
subscription level* — the monitoring infrastructure stays deployed, so the
simulated world is bit-identical across configurations and per-seed
comparisons are exact, not statistical.

Shape: for every seed, the full combination detects no later than any
ablated configuration, and at least one ablation is strictly slower in
aggregate.
"""

from conftest import bench_scenario, run_once

from repro.eval.experiments import run_artemis_suite
from repro.eval.report import format_table
from repro.eval.stats import summarize

SEEDS = range(5)

CONFIGS = {
    "all sources": ("bgpmon", "periscope", "ris"),
    "without RIS": ("bgpmon", "periscope"),
    "without BGPmon": ("periscope", "ris"),
    "without Periscope": ("bgpmon", "ris"),
}


def _run_ablation():
    table = {}
    for label, sources in CONFIGS.items():
        template = bench_scenario(
            enabled_sources=sources, detection_timeout=1800.0
        )
        results = run_artemis_suite(template, seeds=SEEDS)
        table[label] = [r.detection_delay for r in results]
    return table


def test_a1_ablation_sources(benchmark):
    per_config = run_once(benchmark, _run_ablation)
    summaries = {label: summarize(values) for label, values in per_config.items()}
    table = format_table(
        ["configuration", "n detected", "mean detect (s)", "max detect (s)"],
        [
            [label, summary.count, summary.mean, summary.maximum]
            for label, summary in summaries.items()
        ],
        title="A1: detection delay with one source removed (identical worlds)",
    )
    print("\n" + table)
    benchmark.extra_info["table"] = table

    full_delays = per_config["all sources"]
    assert all(delay is not None for delay in full_delays)
    degraded = False
    for label, delays in per_config.items():
        if label == "all sources":
            continue
        for full, ablated in zip(full_delays, delays):
            if ablated is None:
                # The removed source was the only witness: a complete miss,
                # the strongest form of degradation.
                degraded = True
                continue
            # Exact per-seed dominance: identical worlds, min-combination.
            assert full <= ablated + 1e-9, label
            if full < ablated:
                degraded = True
    # At least one source is load-bearing for speed or coverage.
    assert degraded
