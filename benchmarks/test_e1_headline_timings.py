"""E1 — §3 headline timings over a suite of experiments.

Paper (prose): "ARTEMIS needs (on average) 45secs to detect the hijacking,
15secs to announce the de-aggregated /24 prefixes (through the controller),
and, after that, the mitigation is completed within 5mins.  In total, the
hijacking is completely mitigated around 6mins after it has been launched."

Shape asserted here: detection well under 2 minutes, announcement in the
controller's 10–20 s band, mean completion within 5 minutes, total in the
minutes regime, and every run fully mitigated.
"""

from conftest import bench_scenario, run_once

from repro.eval.experiments import run_artemis_suite, summarize_results
from repro.eval.report import format_table, summary_rows

SEEDS = range(10)


def test_e1_headline_timings(benchmark):
    results = run_once(
        benchmark,
        lambda: run_artemis_suite(bench_scenario(), seeds=SEEDS),
    )
    summaries = summarize_results(results)
    table = format_table(
        ["metric", "n", "mean (s)", "median (s)", "p95 (s)", "max (s)"],
        summary_rows(summaries),
        title="E1: three-phase timings "
        "(paper: detect ~45s / announce ~15s / complete <5min / total ~6min)",
    )
    print("\n" + table)
    benchmark.extra_info["table"] = table
    for name in ("detection_delay", "announce_delay", "completion_delay", "total_time"):
        benchmark.extra_info[name + "_mean"] = summaries[name].mean

    detect = summaries["detection_delay"]
    announce = summaries["announce_delay"]
    complete = summaries["completion_delay"]
    total = summaries["total_time"]

    assert detect.count == len(list(SEEDS)), "every run must detect the hijack"
    assert all(r.mitigated for r in results), "every run must fully recover"
    # Detection: sub-minute regime (paper mean 45 s; <1 min claimed).
    assert detect.mean < 120.0
    assert detect.mean > 5.0, "detection cannot beat feed latency floors"
    # Announcement: the controller programming band (paper ~15 s).
    assert 8.0 <= announce.mean <= 25.0
    # Completion dominates and lands within the paper's 5-minute bound.
    assert complete.mean < 300.0
    assert complete.mean > 2 * detect.mean, "completion must dominate detection"
    # Total: minutes, not seconds, not hours (paper ~6 min).
    assert 60.0 < total.mean < 600.0
