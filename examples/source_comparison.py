#!/usr/bin/env python3
"""Compare monitoring sources: who detects first, and at what overhead?

Two experiments from §2 of the paper in one script:

* "By combining multiple sources, the delay of the detection phase is the
  min of the delays of these sources" — measured per source over a suite;
* "The system can be parametrized (e.g., selecting LGs ...) to achieve
  trade-offs between monitoring overhead and detection efficiency/speed" —
  a sweep over the number of looking glasses and their poll interval.

Run:  python examples/source_comparison.py [num_experiments]
"""

import sys

from repro.eval import run_artemis_suite, summarize_results
from repro.eval.experiments import per_source_detection
from repro.eval.report import format_table, summary_rows
from repro.eval.stats import summarize
from repro.testbed import ScenarioConfig
from repro.topology import GeneratorConfig

TOPOLOGY = GeneratorConfig(num_tier1=5, num_tier2=25, num_stubs=90)


def per_source_table(count: int) -> None:
    template = ScenarioConfig(topology=TOPOLOGY)
    results = run_artemis_suite(template, seeds=range(count))
    print(
        format_table(
            ["source", "n", "mean (s)", "median (s)", "p95 (s)", "max (s)"],
            summary_rows(per_source_detection(results)),
            title=f"Detection delay per source over {count} runs "
            "(combined = ARTEMIS = min over sources)",
        )
    )


def overhead_sweep(count: int) -> None:
    rows = []
    for num_lgs, poll in [(2, 300.0), (5, 120.0), (10, 120.0), (10, 60.0), (20, 30.0)]:
        template = ScenarioConfig(
            topology=TOPOLOGY,
            monitors=dict(num_lgs=num_lgs, lg_poll_interval=poll),
        )
        results = run_artemis_suite(template, seeds=range(100, 100 + count))
        detect = summarize(r.detection_delay for r in results)
        queries = summarize(
            r.lg_queries * 60.0 / max(1.0, r.hijack_time + (r.total_time or 0.0))
            for r in results
        )
        rows.append(
            [f"{num_lgs} LGs / {poll:.0f}s poll", detect.mean, queries.mean]
        )
    print(
        format_table(
            ["configuration", "mean detect (s)", "LG queries/min"],
            rows,
            title="Monitoring overhead vs detection speed (Periscope sweep)",
        )
    )


def main() -> None:
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    per_source_table(count)
    print()
    overhead_sweep(max(3, count // 2))


if __name__ == "__main__":
    main()
