#!/usr/bin/env python3
"""Reproduce Section 3 of the paper: "a few dozen" hijack experiments.

Runs N seeded repetitions of the three-phase PEERING-style experiment and
prints the aggregate timing table the paper reports in prose:

    "ARTEMIS needs (on average) 45secs to detect the hijacking, 15secs to
     announce the de-aggregated /24 prefixes (through the controller), and,
     after that, the mitigation is completed within 5mins."

Run:  python examples/peering_experiments.py [num_experiments]
(Defaults to 10 so it finishes in under a minute; the paper used ~30.)
"""

import sys

from repro.eval import run_artemis_suite, summarize_results
from repro.eval.experiments import per_source_detection
from repro.eval.report import format_duration, format_table, summary_rows
from repro.testbed import ScenarioConfig
from repro.topology import GeneratorConfig


def main() -> None:
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    template = ScenarioConfig(
        prefix="10.0.0.0/23",
        topology=GeneratorConfig(num_tier1=5, num_tier2=25, num_stubs=90),
    )
    print(f"running {count} experiments ...")
    results = run_artemis_suite(
        template,
        seeds=range(count),
        on_result=lambda r: print(
            f"  seed {r.seed}: detect={format_duration(r.detection_delay)} "
            f"announce={format_duration(r.announce_delay)} "
            f"total={format_duration(r.total_time)} "
            f"peak-hijacked={r.hijack_fraction_peak:.0%}"
        ),
    )
    print()
    summaries = summarize_results(results)
    print(
        format_table(
            ["metric", "n", "mean (s)", "median (s)", "p95 (s)", "max (s)"],
            summary_rows(summaries),
            title="Section 3 timings (paper: detect ~45s, announce ~15s, "
            "complete <5min, total ~6min)",
        )
    )
    print()
    print(
        format_table(
            ["source", "n", "mean (s)", "median (s)", "p95 (s)", "max (s)"],
            summary_rows(per_source_detection(results)),
            title="Detection delay per source (combined = min over sources)",
        )
    )
    mitigated = sum(1 for r in results if r.mitigated)
    print(f"\nfully mitigated: {mitigated}/{len(results)}")


if __name__ == "__main__":
    main()
