#!/usr/bin/env python3
"""Prevention vs detection: why ARTEMIS is needed even with RPKI.

The paper's opening premise is that hijack *prevention* "is not always
possible".  This example quantifies it on the simulator:

  1. sweep RPKI route-origin-validation (ROV) adoption and watch the
     exact-origin hijack's blast radius shrink — but not disappear until
     literally everyone validates;
  2. then launch a forged-origin (type-1) attack under FULL ROV: origin
     validation is structurally blind to it, while ARTEMIS' path check
     detects and de-aggregation repairs it.

Run:  python examples/rov_study.py [seeds_per_point]
"""

import sys

from repro.eval.experiments import run_artemis_suite
from repro.eval.report import format_duration, format_table
from repro.eval.stats import summarize
from repro.testbed import ScenarioConfig
from repro.topology import GeneratorConfig

TOPOLOGY = GeneratorConfig(num_tier1=5, num_tier2=25, num_stubs=90)


def sweep(seeds: int) -> None:
    rows = []
    for adoption in (0.0, 0.25, 0.5, 0.75, 1.0):
        template = ScenarioConfig(
            topology=TOPOLOGY,
            rov_adoption=adoption,
            auto_mitigate=False,
            observation_window=300.0,
            detection_timeout=600.0,
        )
        results = run_artemis_suite(template, seeds=range(seeds))
        peak = summarize(r.hijack_fraction_peak for r in results)
        detected = sum(1 for r in results if r.detection_delay is not None)
        rows.append([f"{adoption:.0%}", peak.mean * 100, detected, len(results)])
    print(
        format_table(
            ["ROV adoption", "mean peak hijacked (%)", "runs detected", "runs"],
            rows,
            title="Exact-origin hijack blast radius vs ROV adoption "
            "(mitigation disabled)",
        )
    )


def forged_under_full_rov(seeds: int) -> None:
    template = ScenarioConfig(
        topology=TOPOLOGY, rov_adoption=1.0, forge_origin=True
    )
    results = run_artemis_suite(template, seeds=range(seeds))
    peak = summarize(r.hijack_fraction_peak for r in results)
    total = summarize(r.total_time for r in results)
    print("Forged-origin (type-1) attack with 100% ROV deployment:")
    print(f"  peak MitM capture : {peak.mean:.0%} of ASes (ROV saw nothing wrong)")
    print(f"  ARTEMIS detected  : {sum(1 for r in results if r.detection_delay is not None)}/{len(results)} (path alerts)")
    print(f"  fully mitigated   : {sum(1 for r in results if r.mitigated)}/{len(results)}")
    print(f"  mean total time   : {format_duration(total.mean)}")


def main() -> None:
    seeds = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    sweep(seeds)
    print()
    forged_under_full_rov(seeds)


if __name__ == "__main__":
    main()
