#!/usr/bin/env python3
"""Type-1 (forged path) hijack: origin checks pass, path validation catches it.

A smarter attacker does not claim to *be* the victim — it claims to be
*directly connected* to the victim, announcing ``[attacker, victim]`` paths.
Every origin-AS check in the world says the announcement is fine; traffic
still flows to the attacker (a man-in-the-middle position).

ARTEMIS' configuration comes from the operator, so it can go further: the
operator lists their real upstream ASNs, and any path where the hop next to
the origin is not one of them raises a ``path`` alert.  Mitigation is the
same de-aggregation as ever — the more-specifics pull traffic back through
the real upstreams.

Run:  python examples/forged_path_hijack.py [seed]
"""

import sys

from repro.eval.report import format_duration, format_series
from repro.testbed import HijackExperiment, ScenarioConfig
from repro.topology import GeneratorConfig


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    config = ScenarioConfig(
        seed=seed,
        topology=GeneratorConfig(num_tier1=5, num_tier2=25, num_stubs=90),
        forge_origin=True,
    )
    experiment = HijackExperiment(config)
    print(f"running forged-path hijack experiment (seed {seed}) ...")
    result = experiment.run()

    print()
    print(f"victim AS{result.victim_asn} announces {result.prefix} via sites "
          f"{experiment.victim.sites}")
    print(f"attacker AS{result.hijacker_asn} forges "
          f"[{result.hijacker_asn} {result.victim_asn}] paths")
    print()
    print(f"alert type          : {result.alert_type}  "
          "(origin checks alone would stay silent)")
    print(f"detection delay     : {format_duration(result.detection_delay)}")
    print(f"announce delay      : {format_duration(result.announce_delay)}")
    print(f"completion delay    : {format_duration(result.completion_delay)}")
    print(f"TOTAL               : {format_duration(result.total_time)}")
    print(f"peak MitM capture   : {result.hijack_fraction_peak:.0%} of ASes "
          "had the attacker on-path")
    print(f"residual capture    : {result.residual_hijack_fraction:.0%}")
    print()
    print(
        format_series(
            result.ground_truth_series,
            title="fraction of ASes with attacker-free paths",
            width=64,
        )
    )


if __name__ == "__main__":
    main()
