#!/usr/bin/env python3
"""Archive feeds during an incident, then re-run detection offline.

Third-party services work this way on RouteViews archives; operators do it
for post-mortems.  This example:

  1. runs a hijack experiment while recording everything the RIS stream
     delivered to a dump file (``bgpdump -m``-style lines);
  2. loads the archive in a fresh process-state and replays it through a
     brand-new detection service with the same operator configuration;
  3. shows that offline detection reaches the identical verdict (same
     offender, same first-evidence timestamp) as the live run.

Run:  python examples/offline_replay.py [seed] [dump_path]
"""

import sys
import tempfile

from repro.core.config import ArtemisConfig, OwnedPrefix
from repro.core.detection import DetectionService
from repro.feeds.dumpfile import FeedRecorder
from repro.testbed import HijackExperiment, ScenarioConfig
from repro.topology import GeneratorConfig


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    dump_path = (
        sys.argv[2]
        if len(sys.argv) > 2
        else tempfile.NamedTemporaryFile(suffix=".dump", delete=False).name
    )

    # --- live run, with a recorder tee'd onto the RIS stream ------------
    config = ScenarioConfig(
        seed=seed, topology=GeneratorConfig(num_tier1=5, num_tier2=25, num_stubs=90)
    )
    experiment = HijackExperiment(config)
    experiment.setup()
    recorder = FeedRecorder()
    for source in (
        experiment.monitors.ris,
        experiment.monitors.bgpmon,
        experiment.monitors.periscope,
    ):
        source.subscribe(recorder, prefixes=[config.prefix])
    result = experiment.run()
    count = recorder.save(dump_path)
    live_alert = experiment.artemis.alerts[0]
    print(f"live run: detected AS{live_alert.offender_asn} at "
          f"t={live_alert.detected_at:.1f}s (hijack at t={result.hijack_time:.1f}s)")
    print(f"archived {count} events (all sources) to {dump_path}")

    # --- offline replay --------------------------------------------------
    offline_config = ArtemisConfig(
        owned=[OwnedPrefix(config.prefix, {experiment.victim.asn})],
        auto_mitigate=False,
    )
    offline = DetectionService(offline_config)
    loaded = FeedRecorder.load(dump_path)
    loaded.replay_into(offline.handle_event)
    offline_alert = offline.alert_manager.alerts[0]
    print(f"offline replay: detected AS{offline_alert.offender_asn} at "
          f"t={offline_alert.detected_at:.1f}s from the archive alone")

    assert offline_alert.offender_asn == live_alert.offender_asn
    # The archive carries every source, so the offline verdict lands at the
    # exact same instant as the live combined (min-over-sources) detection.
    assert abs(offline_alert.detected_at - live_alert.detected_at) < 1e-9
    print("offline detection timestamp matches the live run exactly ✔")


if __name__ == "__main__":
    main()
