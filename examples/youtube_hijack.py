#!/usr/bin/env python3
"""Replay of the February 2008 YouTube hijack, with and without ARTEMIS.

Pakistan Telecom (AS17557) announced 208.65.153.0/24 — a *more specific* of
YouTube's (AS36561) 208.65.152.0/22 — and the whole Internet followed the
longer match.  YouTube's operators reacted manually after ~80 minutes; the
paper's motivation is exactly this incident.

This example builds the scenario on the simulator:

  1. the victim announces its /22;
  2. the hijacker announces the /24 more-specific → most ASes flip;
  3a. WITH ARTEMIS: the sub-prefix alert fires within seconds-to-a-minute
      and a competitive /24 counter-announcement goes out automatically
      (the /24 cannot be out-de-aggregated — ISPs filter >/24 — so recovery
      is partial: the paper's stated limitation);
  3b. WITHOUT ARTEMIS: a realistic 2008 pipeline (batch-archive third-party
      alert + manual verification + manual reconfiguration) takes the best
      part of an hour before anything changes.

Run:  python examples/youtube_hijack.py [seed]
"""

import sys

from repro.baselines import BaselineExperiment, phas_factory
from repro.eval.report import format_duration
from repro.testbed import HijackExperiment, ScenarioConfig
from repro.topology import GeneratorConfig


def scenario(seed: int) -> ScenarioConfig:
    return ScenarioConfig(
        prefix="208.65.152.0/22",        # YouTube's covering prefix
        hijack_prefix="208.65.153.0/24",  # what Pakistan Telecom announced
        seed=seed,
        topology=GeneratorConfig(num_tier1=5, num_tier2=25, num_stubs=90),
        observation_window=900.0,
    )


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 2008

    print("=== WITH ARTEMIS (automatic sub-prefix response) ===")
    result = HijackExperiment(scenario(seed)).run()
    print(f"alert type          : {result.alert_type}")
    print(f"detection delay     : {format_duration(result.detection_delay)}")
    print(f"announce delay      : {format_duration(result.announce_delay)}")
    print(f"strategy            : {result.strategy}")
    print(f"peak hijack adoption: {result.hijack_fraction_peak:.0%}")
    print(f"residual hijacked   : {result.residual_hijack_fraction:.0%}")
    if result.mitigated:
        print(f"TOTAL outage        : {format_duration(result.total_time)}")
    else:
        print(
            "NOTE: the hijacked /24 cannot be out-de-aggregated (ISPs filter "
            ">/24), so the automatic competitive announcement only recovers "
            "part of the Internet — the limitation §2 of the paper calls out."
        )

    print()
    print("=== WITHOUT ARTEMIS (2008 reality: third-party alert + manual ops) ===")
    baseline = BaselineExperiment(scenario(seed), phas_factory).run()
    print(f"detection delay     : {format_duration(baseline.detection_delay)}")
    print(f"operator reaction   : {format_duration(baseline.reaction_delay)}")
    print(f"residual hijacked   : {baseline.residual_hijack_fraction:.0%}")
    total = (
        format_duration(baseline.total_time)
        if baseline.mitigated
        else f"outage still partial after the operator acted "
        f"({format_duration(baseline.detection_delay + baseline.reaction_delay)}"
        f" until any countermeasure existed)"
    )
    print(f"TOTAL outage        : {total}")
    print()
    print(
        "(YouTube's real outage lasted >2 hours; operators reacted ~80 min "
        "after the hijack began, then also needed prepending and upstream "
        "filtering to fully recover.)"
    )


if __name__ == "__main__":
    main()
