#!/usr/bin/env python3
"""Quickstart: detect and auto-mitigate a BGP prefix hijack in one script.

Builds a small synthetic Internet, attaches a victim and a hijacker virtual
AS (PEERING-testbed style), deploys RIS/BGPmon/Periscope monitoring, runs
ARTEMIS, and replays the paper's three phases:

    phase-1  victim announces 10.0.0.0/23 and the Internet converges
    phase-2  hijacker announces the same prefix; ARTEMIS detects it
    phase-3  ARTEMIS announces the de-aggregated /24s; everyone recovers

Run:  python examples/quickstart.py [seed]
"""

import sys

from repro import HijackExperiment, ScenarioConfig
from repro.topology import GeneratorConfig
from repro.viz import render_experiment_report


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    config = ScenarioConfig(
        prefix="10.0.0.0/23",
        seed=seed,
        # A mid-sized world: 200 ASes runs in a few seconds with churn.
        topology=GeneratorConfig(num_tier1=5, num_tier2=25, num_stubs=90),
    )
    print(f"running hijack experiment (seed {seed}) ...")
    result = HijackExperiment(config).run()
    print()
    print(render_experiment_report(result))


if __name__ == "__main__":
    main()
