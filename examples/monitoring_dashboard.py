#!/usr/bin/env python3
"""The SIGCOMM demo (Section 4): geographic visualisation of a hijack.

Runs one hijack-and-mitigate experiment and renders what the demo showed
live: vantage points around the globe flipping to the illegitimate origin
as the hijack spreads, then flipping back as the de-aggregated prefixes
take over.  Frames are rendered as ASCII world maps; the same frame data is
also exported as JSON (``youtube-style front-ends plug in here``).

Run:  python examples/monitoring_dashboard.py [seed] [--json out.json]
"""

import json
import sys

from repro.eval.report import format_series
from repro.testbed import HijackExperiment, ScenarioConfig
from repro.topology import GeneratorConfig
from repro.viz import GeoMapRenderer


def main() -> None:
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    seed = int(args[0]) if args else 16
    json_path = None
    if "--json" in sys.argv:
        json_path = sys.argv[sys.argv.index("--json") + 1]

    config = ScenarioConfig(
        seed=seed,
        topology=GeneratorConfig(num_tier1=5, num_tier2=25, num_stubs=90),
        monitors=dict(num_ris_vantages=14, num_bgpmon_vantages=10, num_lgs=12),
    )
    experiment = HijackExperiment(config)
    print(f"running experiment (seed {seed}) ...")
    result = experiment.run()

    monitoring = experiment.artemis.monitoring
    renderer = GeoMapRenderer(
        experiment.network.graph, legit_origins={experiment.victim.asn}
    )
    # Phase-1 build-up is boring: replay it into the initial frame state and
    # spend the frames on the hijack + mitigation window.
    initial = {}
    interesting = []
    for when, vantage, prefix, origin in monitoring.transitions:
        if when < result.hijack_time:
            initial[vantage] = origin
        else:
            interesting.append((when, vantage, prefix, origin))
    frames = renderer.frames_from_transitions(
        interesting, initial=initial, max_frames=6
    )
    for when, origins in frames:
        offset = when - result.hijack_time
        label = (
            f"t = {offset:+8.1f}s relative to the hijack"
            if result.hijack_time
            else f"t = {when:.1f}s"
        )
        print()
        print(renderer.ascii_frame(origins, caption=label))

    print()
    print(
        format_series(
            result.monitor_series,
            title="fraction of vantage points on the legitimate origin",
            width=64,
        )
    )
    print()
    print(
        f"detection {result.detection_delay:.0f}s | "
        f"announce +{result.announce_delay:.0f}s | "
        f"complete +{result.completion_delay:.0f}s | "
        f"total {result.total_time:.0f}s"
    )

    if json_path:
        with open(json_path, "w", encoding="utf-8") as handle:
            handle.write(renderer.to_json(frames))
        print(f"frame data written to {json_path}")


if __name__ == "__main__":
    main()
