"""Legacy setup shim.

The execution environment has no ``wheel`` package, so PEP 660 editable
installs (``pip install -e .`` via pyproject alone) cannot build the editable
wheel.  This shim lets ``pip install -e . --no-use-pep517`` (and plain
``python setup.py develop``) work offline.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
