"""Warm-start checkpoints: capture once, fork per run, bit-identical attacks.

The contract under test is the strongest one the substrate makes: an
experiment forked from a checkpoint of the converged phase-1 world must be
**bit-identical** to a cold run of the same configuration — including under
fault plans — while sharing routes and RIB tables with the checkpoint
copy-on-write.  Plus the supporting machinery: fork isolation (no write in
a fork ever reaches the master or a sibling), keying/registry behaviour,
disk roundtrips, the frozen-master engine guard, and the `world_seed` mode
that lets one checkpoint serve a whole sweep of run seeds.
"""

import pickle

import pytest

from conftest import fast_network_config, fast_scenario
from repro.errors import ExperimentError, SimulationError
from repro.eval.experiments import run_artemis_suite
from repro.perf import COUNTERS
from repro.testbed.checkpoint import (
    FORMAT_VERSION,
    Checkpoint,
    acquire_checkpoint,
    checkpoint_key,
    clear_registry,
    load_checkpoint,
    register_checkpoint,
    registered_checkpoint,
    save_checkpoint,
    world_config,
)
from repro.testbed.scenario import HijackExperiment
from test_determinism import (
    GOLDEN_DIGEST,
    GOLDEN_DIGEST_400,
    _golden_config,
    _golden_config_400,
    _outcome_digest,
)
from test_faults import GOLDEN_FAULT_DIGEST, RICH_PLAN, chaos_config, outcome_digest


@pytest.fixture(autouse=True)
def _fresh_registry():
    clear_registry()
    yield
    clear_registry()


def warm(config):
    config.warm_start = True
    return config


# ----------------------------------------------------------- golden equality


class TestWarmEqualsCold:
    def test_warm_start_reproduces_golden_digest(self):
        experiment = HijackExperiment(warm(_golden_config()))
        result = experiment.run()
        assert _outcome_digest(experiment, result) == GOLDEN_DIGEST

    @pytest.mark.slow
    def test_warm_start_reproduces_golden_digest_400as(self):
        experiment = HijackExperiment(warm(_golden_config_400()))
        result = experiment.run()
        assert _outcome_digest(experiment, result) == GOLDEN_DIGEST_400

    def test_warm_start_under_faults_pins_fault_digest(self):
        config = chaos_config(faults=RICH_PLAN, warm_start=True)
        result = HijackExperiment(config).run()
        assert outcome_digest(result) == GOLDEN_FAULT_DIGEST

    def test_second_fork_of_same_checkpoint_is_identical(self):
        first = HijackExperiment(warm(_golden_config()))
        first_digest = _outcome_digest(first, first.run())
        # Same registry entry, second fork — a run leaking state back into
        # the checkpoint would show up here.
        second = HijackExperiment(warm(_golden_config()))
        second_digest = _outcome_digest(second, second.run())
        assert first_digest == second_digest == GOLDEN_DIGEST


# -------------------------------------------------------------- world_seed


class TestWorldSeedMode:
    def _config(self, seed, **kw):
        return fast_scenario(
            seed=seed, network=fast_network_config(), world_seed=9, **kw
        )

    def test_cold_equals_warm_per_run_seed(self):
        for seed in (101, 102):
            cold_exp = HijackExperiment(self._config(seed))
            cold = _outcome_digest(cold_exp, cold_exp.run())
            warm_exp = HijackExperiment(self._config(seed, warm_start=True))
            warm_digest = _outcome_digest(warm_exp, warm_exp.run())
            assert warm_digest == cold, f"run seed {seed} diverged"

    def test_run_seeds_still_vary_under_shared_world(self):
        a = HijackExperiment(self._config(201, warm_start=True))
        b = HijackExperiment(self._config(202, warm_start=True))
        assert _outcome_digest(a, a.run()) != _outcome_digest(b, b.run())

    def test_sweep_shares_one_checkpoint(self):
        key = checkpoint_key(self._config(201))
        assert key == checkpoint_key(self._config(999))
        HijackExperiment(self._config(201, warm_start=True)).run()
        master = registered_checkpoint(key)
        assert master is not None
        HijackExperiment(self._config(202, warm_start=True)).run()
        assert registered_checkpoint(key) is master

    @pytest.mark.slow
    def test_parallel_warm_suite_matches_serial_cold(self):
        seeds = [101, 102, 103, 104]
        cold = run_artemis_suite(self._config(0), seeds, jobs=1)
        warm_results = run_artemis_suite(
            self._config(0, warm_start=True), seeds, jobs=2
        )
        assert [r.seed for r in warm_results] == seeds
        assert [r.to_dict() for r in warm_results] == [r.to_dict() for r in cold]


# ---------------------------------------------------------------- isolation


class TestForkIsolation:
    def _capture(self):
        return Checkpoint.capture(
            fast_scenario(seed=3, network=fast_network_config())
        )

    def test_master_engine_is_frozen(self):
        master = self._capture().experiment
        engine = master.network.engine
        assert engine.frozen
        with pytest.raises(SimulationError):
            engine.run_for(1.0)
        with pytest.raises(SimulationError):
            engine.schedule(1.0, lambda: None)

    def test_fork_is_thawed_and_runnable(self):
        checkpoint = self._capture()
        fork = checkpoint.fork()
        assert not fork.network.engine.frozen
        fork.network.engine.run_for(1.0)
        assert checkpoint.experiment.network.engine.frozen

    def test_fork_churn_never_reaches_master_or_siblings(self):
        checkpoint = self._capture()
        master = checkpoint.experiment
        asn = master.victim.sites[0]
        master_tables = {
            a: dict(s.loc_rib._exact)
            for a, s in master.network.speakers.items()
        }
        mutated = checkpoint.fork()
        # Tear down a real transit link in the fork and let the withdrawal
        # churn propagate — heavy writes into CoW-shared tables.
        graph = mutated.network.graph
        provider = graph.providers_of(asn)[0] if graph.providers_of(asn) else (
            graph.peers_of(asn)[0]
        )
        mutated.network.fail_link(asn, provider)
        mutated.network.engine.run_for(120.0)
        for a, speaker in master.network.speakers.items():
            assert dict(speaker.loc_rib._exact) == master_tables[a], (
                f"fork mutation leaked into master speaker AS{a}"
            )
        # A sibling forked *after* the mutation still sees the clean world.
        sibling = checkpoint.fork()
        for a, speaker in sibling.network.speakers.items():
            assert dict(speaker.loc_rib._exact) == master_tables[a]

    def test_forks_share_route_objects_structurally(self):
        checkpoint = self._capture()
        master = checkpoint.experiment
        fork = checkpoint.fork()
        shared = total = 0
        for asn, speaker in master.network.speakers.items():
            counterpart = fork.network.speakers[asn]
            for ikey, route in speaker.loc_rib._exact.items():
                total += 1
                if counterpart.loc_rib._exact.get(ikey) is route:
                    shared += 1
        assert total > 0
        assert shared == total, "fork copied routes instead of sharing them"

    def test_fork_counts_restores(self):
        checkpoint = self._capture()
        before = COUNTERS.checkpoint_restores
        checkpoint.fork()
        checkpoint.fork()
        assert COUNTERS.checkpoint_restores == before + 2

    def test_warm_run_takes_cow_forks(self):
        config = fast_scenario(
            seed=3, network=fast_network_config(), warm_start=True
        )
        before = COUNTERS.cow_row_forks + COUNTERS.cow_table_forks
        HijackExperiment(config).run()
        assert COUNTERS.cow_row_forks + COUNTERS.cow_table_forks > before


# ---------------------------------------------------------- keys & registry


class TestKeysAndRegistry:
    def test_key_ignores_run_scoped_fields(self):
        base = fast_scenario(seed=4, world_seed=9)
        faulted = fast_scenario(seed=77, world_seed=9, faults=RICH_PLAN)
        faulted.warm_start = True
        assert checkpoint_key(base) == checkpoint_key(faulted)

    def test_key_tracks_world_fields(self):
        assert checkpoint_key(fast_scenario(seed=4)) != checkpoint_key(
            fast_scenario(seed=5)
        )
        assert checkpoint_key(fast_scenario(seed=4)) != checkpoint_key(
            fast_scenario(seed=4, hijack_prefix="10.0.0.0/24")
        )

    def test_world_config_strips_run_fields(self):
        config = fast_scenario(
            seed=77, world_seed=9, faults=RICH_PLAN, warm_start=True
        )
        base = world_config(config)
        assert base.seed == 9
        assert base.world_seed is None
        assert base.faults is None
        assert not base.warm_start
        assert base.checkpoint is None

    def test_acquire_registers_on_miss_and_reuses(self):
        config = fast_scenario(seed=4, network=fast_network_config())
        first = acquire_checkpoint(config)
        assert registered_checkpoint(first.key) is first
        assert acquire_checkpoint(config) is first

    def test_acquire_rejects_incompatible_explicit_checkpoint(self):
        checkpoint = Checkpoint.capture(
            fast_scenario(seed=4, network=fast_network_config())
        )
        other = fast_scenario(seed=5, network=fast_network_config())
        other.checkpoint = checkpoint
        with pytest.raises(ExperimentError, match="incompatible"):
            acquire_checkpoint(other)

    def test_register_and_clear(self):
        checkpoint = Checkpoint.capture(
            fast_scenario(seed=4, network=fast_network_config())
        )
        register_checkpoint(checkpoint)
        assert registered_checkpoint(checkpoint.key) is checkpoint
        clear_registry()
        assert registered_checkpoint(checkpoint.key) is None


# ------------------------------------------------------------- serialization


class TestSaveLoad:
    def test_roundtrip_preserves_outcomes(self, tmp_path):
        config = fast_scenario(seed=6, network=fast_network_config())
        cold_exp = HijackExperiment(config)
        cold = _outcome_digest(cold_exp, cold_exp.run())
        path = str(tmp_path / "world.ckpt")
        save_checkpoint(Checkpoint.capture(config), path)
        warm_config = fast_scenario(
            seed=6, network=fast_network_config(), checkpoint=path
        )
        warm_exp = HijackExperiment(warm_config)
        assert _outcome_digest(warm_exp, warm_exp.run()) == cold

    def test_load_sets_checkpoint_bytes_gauge(self, tmp_path):
        path = str(tmp_path / "world.ckpt")
        save_checkpoint(
            Checkpoint.capture(fast_scenario(seed=6, network=fast_network_config())),
            path,
        )
        COUNTERS.checkpoint_bytes = 0
        load_checkpoint(path)
        assert COUNTERS.checkpoint_bytes > 0

    def test_version_mismatch_is_refused(self, tmp_path):
        checkpoint = Checkpoint.capture(
            fast_scenario(seed=6, network=fast_network_config())
        )
        checkpoint.format_version = FORMAT_VERSION + 1
        with pytest.raises(ExperimentError, match="format"):
            Checkpoint.from_bytes(checkpoint.to_bytes())

    def test_garbage_is_refused(self):
        with pytest.raises(ExperimentError, match="Checkpoint"):
            Checkpoint.from_bytes(pickle.dumps({"not": "a checkpoint"}))
