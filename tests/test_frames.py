"""The zero-pickle binary frame codec (repro.tenants.frames).

Contracts: frames and tagged payloads round-trip exactly (including
float bit-patterns, tuple-vs-list identity, and interned strings);
damaged frames — truncation, bad counts, unknown tags, trailing bytes —
raise ``FrameError`` rather than decoding garbage; and every send is
visible in the ``frames_sent`` / ``frames_bytes`` perf counters.
"""

from __future__ import annotations

import pytest

from repro.perf import COUNTERS
from repro.tenants.frames import (
    FRAME_BATCH,
    FRAME_RESULT,
    FRAME_SPEC,
    FrameError,
    decode_batch,
    decode_error,
    decode_frame,
    decode_payload,
    encode_batch,
    encode_error,
    encode_frame,
    encode_payload,
    send_frame,
)


class TestFrameLayer:
    def test_header_round_trip(self):
        frame = encode_frame(FRAME_BATCH, 42, b"abc")
        assert decode_frame(frame) == (FRAME_BATCH, 42, b"abc")

    def test_truncated_header_is_loud(self):
        with pytest.raises(FrameError, match="shorter than header"):
            decode_frame(b"\x01\x00")

    def test_body_length_mismatch_is_loud(self):
        frame = encode_frame(FRAME_BATCH, 1, b"abcdef")
        with pytest.raises(FrameError, match="length mismatch"):
            decode_frame(frame[:-2])


class TestBatchBodies:
    def test_lines_round_trip(self):
        lines = [b"A|rv|c|1|10.0.0.0/24|1 2|0.5|0.5", b"W|rv|c|1|x||1.0|1.0"]
        kind, epoch, body = decode_frame(encode_batch(7, lines))
        assert (kind, epoch) == (FRAME_BATCH, 7)
        assert decode_batch(body) == lines

    def test_empty_batch(self):
        _kind, _epoch, body = decode_frame(encode_batch(1, []))
        assert decode_batch(body) == []

    def test_count_mismatch_is_loud(self):
        _kind, _epoch, body = decode_frame(encode_batch(1, [b"a", b"b"]))
        with pytest.raises(FrameError, match="line count mismatch"):
            decode_batch(body[:4] + b"a\nb\nc")


class TestTaggedPayloads:
    def test_scalar_and_container_round_trip(self):
        value = {
            "worker": 3,
            "rows": [
                ("tenant-a", "exact", "10.0.0.0/24", -1, 1.5, (1, 2, 3)),
                ("tenant-b", None, True, False, ((1.0, "x"),)),
            ],
            "cpu_seconds": 0.1234567890123456789,
            "empty": [],
            "nested": {"a": {"b": (None,)}},
        }
        frame = encode_payload(FRAME_RESULT, 0, value)
        _kind, _epoch, body = decode_frame(frame)
        decoded = decode_payload(body)
        assert decoded == value
        # Concrete container types survive: digests hash repr() output,
        # which distinguishes tuple from list.
        assert type(decoded["rows"]) is list
        assert type(decoded["rows"][0]) is tuple

    def test_floats_round_trip_bit_identically(self):
        import math
        import struct as _struct

        values = [0.1, 1e-308, 1e308, -0.0, math.pi, 1234.5678901234567]
        frame = encode_payload(FRAME_SPEC, 0, tuple(values))
        decoded = decode_payload(decode_frame(frame)[2])
        for before, after in zip(values, decoded):
            assert _struct.pack("!d", before) == _struct.pack("!d", after)

    def test_strings_interned_once(self):
        # The same long string 50 times must not cost 50 copies.
        text = "tenant-with-a-rather-long-name" * 4
        solo = len(encode_payload(FRAME_SPEC, 0, [text]))
        many = len(encode_payload(FRAME_SPEC, 0, [text] * 50))
        assert many < solo + 50 * 6  # 49 repeats cost a tag + index each

    def test_bool_is_not_int(self):
        decoded = decode_payload(
            decode_frame(encode_payload(FRAME_SPEC, 0, (True, 1, False, 0)))[2]
        )
        assert decoded == (True, 1, False, 0)
        assert [type(v) for v in decoded] == [bool, int, bool, int]

    def test_unencodable_type_is_loud(self):
        with pytest.raises(FrameError, match="unencodable"):
            encode_payload(FRAME_SPEC, 0, {1, 2, 3})

    def test_truncated_payload_is_loud(self):
        frame = encode_payload(FRAME_RESULT, 0, {"key": [1, 2, 3]})
        _kind, _epoch, body = decode_frame(frame)
        with pytest.raises(FrameError):
            decode_payload(body[:-3])

    def test_trailing_bytes_are_loud(self):
        frame = encode_payload(FRAME_RESULT, 0, 7)
        _kind, _epoch, body = decode_frame(frame)
        with pytest.raises(FrameError, match="trailing"):
            decode_payload(body + b"\x00")

    def test_unknown_tag_is_loud(self):
        # A payload with no strings whose single value has a bogus tag.
        body = b"\x00\x00\x00\x00" + b"\x63"
        with pytest.raises(FrameError, match="unknown payload tag"):
            decode_payload(body)

    def test_error_frames(self):
        frame = encode_error("worker 3: boom")
        kind, _epoch, body = decode_frame(frame)
        assert decode_error(body) == "worker 3: boom"


class TestSendCounters:
    def test_send_frame_counts(self):
        class FakeConn:
            def __init__(self):
                self.sent = []

            def send_bytes(self, data):
                self.sent.append(data)

        COUNTERS.reset()
        conn = FakeConn()
        frame = encode_batch(1, [b"line"])
        send_frame(conn, frame)
        send_frame(conn, frame)
        assert conn.sent == [frame, frame]
        assert COUNTERS.frames_sent == 2
        assert COUNTERS.frames_bytes == 2 * len(frame)
