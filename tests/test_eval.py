"""Tests for stats, the duration model, suite runners, and reporting."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import ExperimentError
from repro.eval.durations import DEFAULT_ANCHORS, HijackDurationModel
from repro.eval.experiments import (
    per_source_detection,
    run_artemis_suite,
    summarize_results,
)
from repro.eval.report import (
    format_duration,
    format_series,
    format_table,
    summary_rows,
)
from repro.eval.stats import Summary, percentile, summarize
from repro.sim.rng import SeededRNG

from conftest import fast_scenario


class TestPercentile:
    def test_median_odd(self):
        assert percentile([3, 1, 2], 50) == 2

    def test_interpolation(self):
        assert percentile([0, 10], 25) == 2.5

    def test_extremes(self):
        values = [5, 1, 9]
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 9

    def test_single_value(self):
        assert percentile([7], 95) == 7

    def test_errors(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 101)


class TestSummary:
    def test_basic(self):
        summary = Summary([1, 2, 3, 4])
        assert summary.count == 4
        assert summary.mean == 2.5
        assert summary.median == 2.5
        assert summary.minimum == 1 and summary.maximum == 4

    def test_stdev(self):
        summary = Summary([2, 4])
        assert summary.stdev == pytest.approx(math.sqrt(2))
        assert Summary([5]).stdev == 0.0

    def test_empty(self):
        summary = Summary([])
        assert summary.count == 0
        assert math.isnan(summary.mean)

    def test_summarize_skips_none(self):
        summary = summarize([1.0, None, 3.0])
        assert summary.count == 2

    def test_to_dict(self):
        data = Summary([1, 2]).to_dict()
        assert data["count"] == 2 and data["mean"] == 1.5


class TestDurationModel:
    def test_anchor_statistics_hold(self):
        model = HijackDurationModel()
        # ">20% of hijacks last < 10 min" (paper citing Argus).
        assert model.cdf(10 * 60) == pytest.approx(0.22)
        # ARTEMIS' ~6 min cycle beats more than 80% of events.
        assert model.fraction_outlived_by(6 * 60) > 0.80

    def test_cdf_monotone(self):
        model = HijackDurationModel()
        previous = 0.0
        for seconds in [1, 10, 60, 300, 600, 3600, 86400, 30 * 86400]:
            value = model.cdf(seconds)
            assert value >= previous
            previous = value
        assert model.cdf(10**9) == 1.0
        assert model.cdf(0) == 0.0

    def test_sample_within_support(self):
        model = HijackDurationModel()
        rng = SeededRNG(1)
        samples = model.sample_many(rng, 500)
        assert all(1.0 <= s <= 30 * 24 * 3600 for s in samples)

    def test_sample_matches_cdf(self):
        model = HijackDurationModel()
        rng = SeededRNG(2)
        samples = model.sample_many(rng, 3000)
        short = sum(1 for s in samples if s < 600) / len(samples)
        assert abs(short - 0.22) < 0.04

    def test_validation(self):
        with pytest.raises(ExperimentError):
            HijackDurationModel([(60, 0.5)])
        with pytest.raises(ExperimentError):
            HijackDurationModel([(60, 0.5), (30, 1.0)])
        with pytest.raises(ExperimentError):
            HijackDurationModel([(60, 0.5), (120, 0.4), (240, 1.0)])
        with pytest.raises(ExperimentError):
            HijackDurationModel([(60, 0.5), (120, 0.9)])

    @given(st.floats(min_value=1.0, max_value=2_000_000.0))
    def test_cdf_bounded(self, duration):
        model = HijackDurationModel()
        assert 0.0 <= model.cdf(duration) <= 1.0


class TestSuiteRunners:
    @pytest.fixture(scope="class")
    def results(self):
        return run_artemis_suite(fast_scenario(), seeds=[21, 22])

    def test_one_result_per_seed(self, results):
        assert [r.seed for r in results] == [21, 22]

    def test_template_not_mutated(self, results):
        template = fast_scenario(seed=99)
        run_artemis_suite(template, seeds=[21])
        assert template.seed == 99

    def test_summarize_results(self, results):
        table = summarize_results(results)
        assert table["detection_delay"].count == 2
        assert table["total_time"].mean > 0

    def test_per_source_detection(self, results):
        table = per_source_detection(results)
        assert "combined" in table
        assert table["combined"].count == 2
        # Combined (min) can never be slower than any individual source mean
        # within the same runs; check against the fastest source mean.
        fastest = min(
            s.mean for name, s in table.items() if name != "combined"
        )
        assert table["combined"].mean <= fastest + 1e-9

    def test_on_result_hook(self):
        seen = []
        run_artemis_suite(fast_scenario(), seeds=[23], on_result=seen.append)
        assert len(seen) == 1


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(
            ["name", "value"], [["a", 1.234], ["bb", None]], title="T", precision=2
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "1.23" in text and "-" in text
        assert len(lines) == 5

    def test_format_duration(self):
        assert format_duration(None) == "-"
        assert format_duration(45) == "45s"
        assert format_duration(330) == "5.5min"
        assert format_duration(7200) == "2.0h"

    def test_format_series(self):
        series = [(0.0, 0.0), (10.0, 0.5), (20.0, 1.0)]
        text = format_series(series, title="recovery", width=20)
        assert "recovery" in text
        assert "|" in text

    def test_format_series_empty(self):
        assert "empty" in format_series([])

    def test_summary_rows(self):
        rows = summary_rows({"detect": Summary([10.0, 20.0]), "none": Summary([])})
        assert rows[0][0] == "detect" and rows[0][2] == 15.0
        assert rows[1][1] == 0 and rows[1][2] is None
