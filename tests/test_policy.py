"""Tests for relationships, Gao-Rexford export rules, and route filters."""

import pytest

from repro.bgp.messages import Announcement
from repro.bgp.policy import (
    DEFAULT_LOCAL_PREF,
    AcceptAll,
    FilterChain,
    MaxLengthFilter,
    Policy,
    PrefixDenyFilter,
    Relationship,
)
from repro.errors import BGPError
from repro.net.prefix import Prefix


def A(prefix, path=(1, 2)):
    return Announcement(Prefix.parse(prefix), path)


class TestRelationship:
    def test_inverse(self):
        assert Relationship.CUSTOMER.inverse() is Relationship.PROVIDER
        assert Relationship.PROVIDER.inverse() is Relationship.CUSTOMER
        assert Relationship.PEER.inverse() is Relationship.PEER
        assert Relationship.MONITOR.inverse() is Relationship.MONITOR

    def test_default_local_pref_order(self):
        assert (
            DEFAULT_LOCAL_PREF[Relationship.CUSTOMER]
            > DEFAULT_LOCAL_PREF[Relationship.PEER]
            > DEFAULT_LOCAL_PREF[Relationship.PROVIDER]
        )


class TestExportRule:
    """The valley-free matrix: rows = learned from, cols = export to."""

    def setup_method(self):
        self.policy = Policy()

    @pytest.mark.parametrize(
        "to", [Relationship.CUSTOMER, Relationship.PEER, Relationship.PROVIDER]
    )
    def test_self_originated_exported_everywhere(self, to):
        assert self.policy.should_export(None, to)

    @pytest.mark.parametrize(
        "to", [Relationship.CUSTOMER, Relationship.PEER, Relationship.PROVIDER]
    )
    def test_customer_routes_exported_everywhere(self, to):
        assert self.policy.should_export(Relationship.CUSTOMER, to)

    @pytest.mark.parametrize("learned", [Relationship.PEER, Relationship.PROVIDER])
    def test_peer_and_provider_routes_only_to_customers(self, learned):
        assert self.policy.should_export(learned, Relationship.CUSTOMER)
        assert not self.policy.should_export(learned, Relationship.PEER)
        assert not self.policy.should_export(learned, Relationship.PROVIDER)

    @pytest.mark.parametrize(
        "learned",
        [None, Relationship.CUSTOMER, Relationship.PEER, Relationship.PROVIDER],
    )
    def test_monitors_receive_everything(self, learned):
        assert self.policy.should_export(learned, Relationship.MONITOR)


class TestFilters:
    def test_accept_all(self):
        assert AcceptAll().accepts(A("10.0.0.0/25"))

    def test_max_length_v4(self):
        f = MaxLengthFilter(24)
        assert f.accepts(A("10.0.0.0/24"))
        assert not f.accepts(A("10.0.0.0/25"))
        assert f.accepts(A("10.0.0.0/8"))

    def test_max_length_v6(self):
        f = MaxLengthFilter(24, 48)
        assert f.accepts(Announcement(Prefix.parse("2001:db8::/48"), (1,)))
        assert not f.accepts(Announcement(Prefix.parse("2001:db8::/49"), (1,)))

    def test_max_length_validation(self):
        with pytest.raises(BGPError):
            MaxLengthFilter(33)
        with pytest.raises(BGPError):
            MaxLengthFilter(24, 129)

    def test_prefix_deny(self):
        f = PrefixDenyFilter([Prefix.parse("10.0.0.0/8")])
        assert not f.accepts(A("10.1.0.0/16"))
        assert f.accepts(A("11.0.0.0/16"))

    def test_filter_chain_all_must_accept(self):
        chain = FilterChain(
            [MaxLengthFilter(24), PrefixDenyFilter([Prefix.parse("10.0.0.0/8")])]
        )
        assert chain.accepts(A("11.0.0.0/24"))
        assert not chain.accepts(A("11.0.0.0/25"))  # too long
        assert not chain.accepts(A("10.0.0.0/24"))  # denied

    def test_filter_callable(self):
        assert MaxLengthFilter(24)(A("10.0.0.0/24"))


class TestPolicyImport:
    def test_import_filter_applied(self):
        policy = Policy(import_filter=MaxLengthFilter(24))
        assert policy.accept_import(A("10.0.0.0/24"), Relationship.PEER)
        assert not policy.accept_import(A("10.0.0.0/25"), Relationship.PEER)

    def test_local_pref_overrides(self):
        policy = Policy(local_pref_overrides={Relationship.PEER: 250})
        assert policy.import_local_pref(Relationship.PEER) == 250
        assert policy.import_local_pref(Relationship.CUSTOMER) == 300
