"""Tests for the sharded propagation engine (:mod:`repro.shard`).

Partitioning invariants, the epoch-stamped window protocol, cross-shard
session bookkeeping, snapshot/restore, and the on-disk topology cache.
The bit-identity guarantee itself (``--shards 1`` vs ``2`` vs ``4``) is
enforced in ``tests/test_determinism.py`` next to the other golden digests.
"""

import os

import pytest

from repro.errors import SimulationError
from repro.internet.network import NetworkConfig
from repro.shard.boundary import DeliveryBundle
from repro.shard.partition import partition_graph
from repro.shard.runner import ShardRunner, SingleRunner, make_runner
from repro.shard.world import ShardWorld
from repro.sim.latency import Constant
from repro.topology.cache import cache_path, graph_cache_key, load_or_build_graph
from repro.topology.generator import GeneratorConfig, generate_internet
from repro.topology.serial import from_caida_lines, to_caida_lines

TOPOLOGY = GeneratorConfig(num_tier1=4, num_tier2=12, num_stubs=40)


@pytest.fixture(scope="module")
def graph():
    return generate_internet(TOPOLOGY, seed=7)


# ------------------------------------------------------------- partitioning


class TestPartition:
    def test_every_as_assigned_exactly_once(self, graph):
        plan = partition_graph(graph, 4)
        assert set(plan.assignment) == set(graph.asns())
        flattened = [asn for asns in plan.shard_asns for asn in asns]
        assert sorted(flattened) == sorted(graph.asns())
        assert len(flattened) == len(set(flattened))

    def test_cut_is_exactly_the_cross_shard_links(self, graph):
        plan = partition_graph(graph, 3)
        expected = set()
        for a, b, _view in graph.links():
            if plan.shard_of(a) != plan.shard_of(b):
                expected.add((a, b) if a <= b else (b, a))
        assert set(plan.cut_links) == expected
        assert len(plan.cut_links) == len(expected)  # no duplicates
        for a, b in plan.cut_links:
            assert plan.shard_of(a) != plan.shard_of(b)

    def test_lookahead_is_min_cut_floor(self, graph):
        plan = partition_graph(graph, 2)
        assert plan.cut_links, "a 2-way split of this world must cut links"
        assert all(floor > 0.0 for floor in plan.link_floors.values())
        assert plan.lookahead == min(plan.link_floors.values())

    def test_single_shard_has_empty_cut(self, graph):
        plan = partition_graph(graph, 1)
        assert plan.cut_links == []
        assert plan.lookahead is None
        assert set(plan.assignment.values()) == {0}

    def test_cut_links_of_partitions_the_cut(self, graph):
        plan = partition_graph(graph, 2)
        # With two shards every cut link touches both.
        assert set(plan.cut_links_of(0)) == set(plan.cut_links)
        assert set(plan.cut_links_of(1)) == set(plan.cut_links)

    def test_zero_floor_cut_raises(self, graph):
        config = NetworkConfig(session_delay_override=Constant(0.0))
        with pytest.raises(SimulationError, match="zero delay lower bound"):
            partition_graph(graph, 2, config)

    def test_rejects_bad_shard_count(self, graph):
        with pytest.raises(SimulationError):
            partition_graph(graph, 0)


# ------------------------------------------------- topology shipping format


class TestAnnotatedRoundTrip:
    def test_annotated_lines_rebuild_the_same_graph(self, graph):
        rebuilt = from_caida_lines(to_caida_lines(graph, annotate=True))
        assert rebuilt.asns() == graph.asns()
        assert rebuilt.link_count() == graph.link_count()
        for asn in graph.asns():
            original, clone = graph.node(asn), rebuilt.node(asn)
            assert clone.tier == original.tier
            assert clone.region == original.region
            assert clone.tags == original.tags


# ------------------------------------------------------- window protocol


class TestWindowProtocol:
    @pytest.fixture()
    def shard_pair(self, graph):
        plan = partition_graph(graph, 2)
        worlds = [
            ShardWorld(graph, None, 7, plan.shard_asns[shard])
            for shard in range(2)
        ]
        return plan, worlds

    def test_boundary_sessions_mirrored_on_both_shards(self, shard_pair):
        plan, (world_a, world_b) = shard_pair
        assert set(world_a.network.boundary_sessions) == set(plan.cut_links)
        assert set(world_b.network.boundary_sessions) == set(plan.cut_links)

    def test_epochs_advance_one_at_a_time(self, shard_pair):
        _plan, (world, _other) = shard_pair
        world.run_window(1, 1.0, [])
        world.run_window(2, 2.0, [])
        with pytest.raises(SimulationError, match="out-of-order window"):
            world.run_window(4, 3.0, [])

    def test_stale_bundle_rejected(self, shard_pair):
        plan, (world, _other) = shard_pair
        link = plan.cut_links[0]
        with pytest.raises(SimulationError, match="stale bundle"):
            world.run_window(1, 1.0, [DeliveryBundle(link, 2, [])])

    def test_duplicate_bundle_rejected(self, shard_pair):
        plan, (world, _other) = shard_pair
        link = plan.cut_links[0]
        bundles = [DeliveryBundle(link, 1, []), DeliveryBundle(link, 1, [])]
        with pytest.raises(SimulationError, match="duplicate bundle"):
            world.run_window(1, 1.0, bundles)

    def test_unknown_link_rejected(self, shard_pair):
        _plan, (world, _other) = shard_pair
        with pytest.raises(SimulationError, match="unknown cut link"):
            world.run_window(1, 1.0, [DeliveryBundle((999_998, 999_999), 1, [])])


# ----------------------------------------------------------------- runners


class TestRunners:
    def test_make_runner_dispatches_on_shard_count(self, graph):
        single = make_runner(graph, 1, seed=7)
        try:
            assert isinstance(single, SingleRunner)
        finally:
            single.close()
        with make_runner(graph, 2, seed=7) as sharded:
            assert isinstance(sharded, ShardRunner)
        with pytest.raises(SimulationError):
            make_runner(graph, 0, seed=7)

    def test_observation_covers_every_as(self, graph):
        victim = graph.stubs()[0]
        with make_runner(graph, 2, seed=7) as runner:
            runner.watch("10.0.0.0/24")
            runner.originate(victim, "10.0.0.0/24")
            runner.run_to(200.0)
            origins = runner.observe("10.0.0.0/24")
        assert set(origins) == set(graph.asns())
        assert origins[victim] == victim

    def test_cannot_run_backwards(self, graph):
        with make_runner(graph, 2, seed=7) as runner:
            runner.run_to(10.0)
            with pytest.raises(SimulationError):
                runner.run_to(5.0)

    def test_snapshot_restore_replays_identically(self, graph):
        victim, hijacker = graph.stubs()[0], graph.stubs()[1]
        with make_runner(graph, 2, seed=7) as runner:
            runner.watch("10.0.0.0/24")
            runner.originate(victim, "10.0.0.0/22")
            runner.run_to(400.0)
            runner.snapshot()

            def hijack_run():
                runner.originate(hijacker, "10.0.0.0/24")
                runner.run_to(700.0)
                return runner.observe("10.0.0.0/24"), runner.flips("10.0.0.0/24")

            first = hijack_run()
            runner.restore()
            second = hijack_run()
        assert first == second
        assert any(origin == hijacker for origin in first[0].values())

    def test_restore_without_snapshot_raises(self, graph):
        with make_runner(graph, 2, seed=7) as runner:
            with pytest.raises(SimulationError, match="no snapshot"):
                runner.restore()


# ---------------------------------------------------------- topology cache


class TestTopologyCache:
    def test_miss_builds_and_hit_loads_identical_graph(self, tmp_path):
        cache_dir = str(tmp_path)
        built = load_or_build_graph(TOPOLOGY, seed=7, cache_dir=cache_dir)
        assert os.path.exists(cache_path(cache_dir, TOPOLOGY, 7))
        loaded = load_or_build_graph(TOPOLOGY, seed=7, cache_dir=cache_dir)
        assert list(to_caida_lines(loaded, annotate=True)) == list(
            to_caida_lines(built, annotate=True)
        )

    def test_key_changes_with_seed_and_params(self):
        base = graph_cache_key(TOPOLOGY, 7)
        assert graph_cache_key(TOPOLOGY, 8) != base
        other = GeneratorConfig(num_tier1=4, num_tier2=12, num_stubs=41)
        assert graph_cache_key(other, 7) != base

    def test_no_cache_dir_means_plain_generation(self, graph):
        direct = load_or_build_graph(TOPOLOGY, seed=7, cache_dir=None)
        assert list(to_caida_lines(direct, annotate=True)) == list(
            to_caida_lines(graph, annotate=True)
        )
