"""System-level BGP invariants over randomized Internets.

These are the properties that make the simulator trustworthy as a
substrate: whatever the topology and announcement pattern, converged state
must be loop-free, valley-free, policy-consistent, and deterministic.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bgp.policy import Relationship
from repro.internet.network import Network
from repro.net.prefix import Prefix
from repro.topology.generator import GeneratorConfig, generate_internet

from conftest import fast_network_config


def build_converged(seed, announcers=3):
    """A small random Internet with a few prefixes announced and converged."""
    graph = generate_internet(
        GeneratorConfig(num_tier1=3, num_tier2=8, num_stubs=18), seed=seed
    )
    network = Network(graph, config=fast_network_config(), seed=seed)
    asns = network.asns()
    for index in range(announcers):
        origin = asns[(seed + index * 7) % len(asns)]
        network.announce(origin, f"10.{index}.0.0/16")
        # Origins also announce a more specific, exercising the trie paths.
        network.announce(origin, f"10.{index}.128.0/17")
    network.run_until_converged()
    return graph, network


def relationship_between(graph, a, b):
    """a's view of b."""
    if b in graph.providers_of(a):
        return Relationship.PROVIDER
    if b in graph.customers_of(a):
        return Relationship.CUSTOMER
    if b in graph.peers_of(a):
        return Relationship.PEER
    return None


def is_valley_free(graph, path):
    """Check Gao-Rexford validity of an AS path (origin last).

    Walking from the origin towards the receiver, the exporting side makes
    a sequence of hops; once a path has gone down (provider→customer) or
    across (peer), it may only continue down.
    """
    hops = list(reversed(path))  # origin → ... → sender
    descending = False
    for earlier, later in zip(hops, hops[1:]):
        rel = relationship_between(graph, earlier, later)
        if rel is None:
            return False  # non-adjacent ASes in path
        if rel is Relationship.PROVIDER:
            # earlier exports to its provider: only allowed while ascending.
            if descending:
                return False
        elif rel is Relationship.PEER:
            if descending:
                return False
            descending = True
        else:  # exporting to a customer: descending begins/continues
            descending = True
    return True


@pytest.mark.parametrize("seed", range(8))
class TestConvergedState:
    def test_no_as_path_loops(self, seed):
        _graph, network = build_converged(seed)
        for asn in network.asns():
            for route in network.speaker(asn).table_dump():
                assert len(route.as_path) == len(set(route.as_path)), (
                    f"loop in {route} at AS{asn}"
                )
                assert asn not in route.as_path

    def test_all_paths_valley_free(self, seed):
        graph, network = build_converged(seed)
        for asn in network.asns():
            for route in network.speaker(asn).table_dump():
                if route.is_local or len(route.as_path) < 2:
                    continue
                assert is_valley_free(graph, route.as_path), (
                    f"valley in {route.as_path} at AS{asn}"
                )

    def test_paths_are_graph_walks_to_receiver(self, seed):
        graph, network = build_converged(seed)
        for asn in network.asns():
            for route in network.speaker(asn).table_dump():
                if route.is_local:
                    continue
                # The first path element is the peer the route came from,
                # and it must be adjacent to the receiver.
                assert route.as_path[0] == route.peer_asn
                assert relationship_between(graph, asn, route.as_path[0]) is not None

    def test_everyone_reaches_every_prefix(self, seed):
        _graph, network = build_converged(seed)
        # Announced prefixes are globally reachable after convergence
        # (customer routes export everywhere, so no policy black holes
        # for a connected hierarchy).
        prefixes = set()
        for asn in network.asns():
            prefixes.update(network.speaker(asn).originated_prefixes)
        for prefix in prefixes:
            for asn in network.asns():
                assert network.speaker(asn).resolve(prefix.network) is not None

    def test_local_pref_consistent_with_relationship(self, seed):
        graph, network = build_converged(seed)
        from repro.bgp.policy import DEFAULT_LOCAL_PREF

        for asn in network.asns():
            for route in network.speaker(asn).table_dump():
                if route.is_local:
                    continue
                rel = relationship_between(graph, asn, route.peer_asn)
                assert route.local_pref == DEFAULT_LOCAL_PREF[rel]


class TestDeterminism:
    def test_identical_runs_identical_state(self):
        dumps = []
        for _ in range(2):
            _graph, network = build_converged(seed=3)
            state = {
                asn: sorted(
                    (str(r.prefix), r.as_path)
                    for r in network.speaker(asn).table_dump()
                )
                for asn in network.asns()
            }
            dumps.append((state, network.engine.events_processed))
        assert dumps[0] == dumps[1]

    @settings(max_examples=5, deadline=None)
    @given(st.integers(min_value=0, max_value=1000))
    def test_any_seed_converges(self, seed):
        _graph, network = build_converged(seed)
        assert not network.tracker.busy
