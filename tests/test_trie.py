"""Unit and property tests for the radix trie."""

import pytest
from hypothesis import given, strategies as st

from repro.net.prefix import Address, Prefix
from repro.net.trie import PrefixTrie


def P(text):
    return Prefix.parse(text)


class TestBasicOps:
    def test_insert_get(self):
        trie = PrefixTrie()
        trie[P("10.0.0.0/24")] = "a"
        assert trie[P("10.0.0.0/24")] == "a"
        assert trie.get(P("10.0.0.0/24")) == "a"

    def test_get_default(self):
        trie = PrefixTrie()
        assert trie.get(P("10.0.0.0/24"), "missing") == "missing"

    def test_getitem_missing_raises(self):
        with pytest.raises(KeyError):
            PrefixTrie()[P("10.0.0.0/24")]

    def test_len_and_bool(self):
        trie = PrefixTrie()
        assert not trie and len(trie) == 0
        trie[P("10.0.0.0/24")] = 1
        trie[P("10.0.0.0/23")] = 2
        assert trie and len(trie) == 2

    def test_replace_does_not_grow(self):
        trie = PrefixTrie()
        trie[P("10.0.0.0/24")] = 1
        trie[P("10.0.0.0/24")] = 2
        assert len(trie) == 1
        assert trie[P("10.0.0.0/24")] == 2

    def test_contains(self):
        trie = PrefixTrie()
        trie[P("10.0.0.0/23")] = 1
        assert P("10.0.0.0/23") in trie
        # Interior node on the path is not a stored key.
        assert P("10.0.0.0/22") not in trie
        assert P("10.0.0.0/24") not in trie

    def test_remove(self):
        trie = PrefixTrie()
        trie[P("10.0.0.0/24")] = 1
        assert trie.remove(P("10.0.0.0/24")) == 1
        assert len(trie) == 0
        with pytest.raises(KeyError):
            trie.remove(P("10.0.0.0/24"))

    def test_remove_keeps_other_keys(self):
        trie = PrefixTrie()
        trie[P("10.0.0.0/24")] = 1
        trie[P("10.0.0.0/23")] = 2
        del trie[P("10.0.0.0/24")]
        assert trie[P("10.0.0.0/23")] == 2
        assert len(trie) == 1

    def test_root_key(self):
        trie = PrefixTrie()
        trie[P("0.0.0.0/0")] = "default"
        assert trie[P("0.0.0.0/0")] == "default"
        assert trie.longest_match("203.0.113.5")[1] == "default"

    def test_v4_v6_coexist(self):
        trie = PrefixTrie()
        trie[P("0.0.0.0/0")] = "v4"
        trie[P("::/0")] = "v6"
        assert trie.longest_match("10.0.0.1")[1] == "v4"
        assert trie.longest_match(Address.parse("::1"))[1] == "v6"
        assert len(trie) == 2


class TestLongestMatch:
    def test_prefers_more_specific(self):
        trie = PrefixTrie()
        trie[P("10.0.0.0/23")] = "covering"
        trie[P("10.0.0.0/24")] = "specific"
        assert trie.longest_match("10.0.0.1") == (P("10.0.0.0/24"), "specific")
        assert trie.longest_match("10.0.1.1") == (P("10.0.0.0/23"), "covering")

    def test_none_when_uncovered(self):
        trie = PrefixTrie()
        trie[P("10.0.0.0/24")] = 1
        assert trie.longest_match("11.0.0.1") is None

    def test_prefix_target_not_matched_by_longer(self):
        trie = PrefixTrie()
        trie[P("10.0.0.0/24")] = 1
        # A /23 query must not match the stored /24 (it does not cover it).
        assert trie.longest_match(P("10.0.0.0/23")) is None

    def test_prefix_target_matched_by_equal_or_shorter(self):
        trie = PrefixTrie()
        trie[P("10.0.0.0/23")] = "x"
        assert trie.longest_match(P("10.0.0.0/23"))[0] == P("10.0.0.0/23")
        assert trie.longest_match(P("10.0.0.0/24"))[0] == P("10.0.0.0/23")

    def test_string_targets(self):
        trie = PrefixTrie()
        trie[P("10.0.0.0/23")] = "x"
        assert trie.longest_match("10.0.0.0/24")[1] == "x"
        assert trie.longest_match("10.0.0.7")[1] == "x"


class TestSubtreeQueries:
    def setup_method(self):
        self.trie = PrefixTrie()
        for text in ["10.0.0.0/22", "10.0.0.0/24", "10.0.1.0/24", "10.0.2.0/24", "11.0.0.0/8"]:
            self.trie[P(text)] = text

    def test_covered(self):
        inside = [p for p, _v in self.trie.covered(P("10.0.0.0/23"))]
        assert inside == [P("10.0.0.0/24"), P("10.0.1.0/24")]

    def test_covered_includes_exact(self):
        inside = [p for p, _v in self.trie.covered(P("10.0.0.0/22"))]
        assert P("10.0.0.0/22") in inside and len(inside) == 4

    def test_covering(self):
        above = [p for p, _v in self.trie.covering(P("10.0.0.0/24"))]
        assert above == [P("10.0.0.0/22"), P("10.0.0.0/24")]

    def test_covering_address(self):
        above = [p for p, _v in self.trie.covering(Address.parse("10.0.2.9"))]
        assert above == [P("10.0.0.0/22"), P("10.0.2.0/24")]

    def test_items_sorted(self):
        keys = list(self.trie.keys())
        assert keys == sorted(keys)
        assert len(keys) == 5

    def test_values_match_items(self):
        assert list(self.trie.values()) == [str(p) for p in self.trie.keys()]


# --------------------------------------------------------------- properties

@st.composite
def v4_prefix(draw):
    value = draw(st.integers(min_value=0, max_value=(1 << 32) - 1))
    length = draw(st.integers(min_value=0, max_value=32))
    return Prefix(value, length, 4)


@given(st.lists(v4_prefix(), min_size=1, max_size=30), st.integers(0, (1 << 32) - 1))
def test_longest_match_equals_bruteforce(prefixes, probe_value):
    trie = PrefixTrie()
    for index, prefix in enumerate(prefixes):
        trie[prefix] = index
    probe = Address(probe_value, 4)
    expected = None
    for prefix in prefixes:
        if prefix.contains_address(probe):
            if expected is None or prefix.length > expected.length:
                expected = prefix
    match = trie.longest_match(probe)
    if expected is None:
        assert match is None
    else:
        assert match[0] == expected


@given(st.lists(v4_prefix(), min_size=1, max_size=30))
def test_insert_remove_leaves_trie_empty(prefixes):
    trie = PrefixTrie()
    unique = list(dict.fromkeys(prefixes))
    for prefix in unique:
        trie[prefix] = str(prefix)
    assert len(trie) == len(unique)
    for prefix in unique:
        assert trie.remove(prefix) == str(prefix)
    assert len(trie) == 0
    assert list(trie.items()) == []


@given(st.lists(v4_prefix(), min_size=1, max_size=30))
def test_iteration_is_sorted_and_complete(prefixes):
    trie = PrefixTrie()
    for prefix in prefixes:
        trie[prefix] = 0
    keys = list(trie.keys())
    assert keys == sorted(keys)
    assert set(keys) == set(prefixes)


class TestDefaultRouteEdgeCases:
    """Default-route (0.0.0.0/0, ::/0) and mixed-version behaviour of the
    subtree queries — the paths the feed interest index leans on."""

    def setup_method(self):
        self.trie = PrefixTrie()
        for text, value in [
            ("0.0.0.0/0", "v4-default"),
            ("10.0.0.0/8", "ten"),
            ("10.0.0.0/24", "ten-24"),
            ("::/0", "v6-default"),
            ("2001:db8::/32", "db8"),
        ]:
            self.trie[P(text)] = value

    def test_covering_yields_default_first(self):
        above = [v for _p, v in self.trie.covering(P("10.0.0.0/24"))]
        assert above == ["v4-default", "ten", "ten-24"]

    def test_covering_address_includes_default(self):
        above = [v for _p, v in self.trie.covering(Address.parse("99.0.0.1"))]
        assert above == ["v4-default"]

    def test_covering_v6_uses_v6_default(self):
        above = [v for _p, v in self.trie.covering(P("2001:db8::/48"))]
        assert above == ["v6-default", "db8"]

    def test_covered_from_default_route_is_version_scoped(self):
        inside_v4 = {v for _p, v in self.trie.covered(P("0.0.0.0/0"))}
        assert inside_v4 == {"v4-default", "ten", "ten-24"}
        inside_v6 = {v for _p, v in self.trie.covered(P("::/0"))}
        assert inside_v6 == {"v6-default", "db8"}

    def test_longest_match_falls_back_to_default(self):
        assert self.trie.longest_match("99.0.0.1")[0] == P("0.0.0.0/0")
        assert self.trie.longest_match("10.1.0.1")[0] == P("10.0.0.0/8")
        assert self.trie.longest_match("10.0.0.1")[0] == P("10.0.0.0/24")
        assert self.trie.longest_match(Address.parse("fe80::1"))[0] == P("::/0")

    def test_longest_match_prefix_target_with_default(self):
        # A /0 target can only be matched by the stored /0.
        match = self.trie.longest_match(P("0.0.0.0/0"))
        assert match == (P("0.0.0.0/0"), "v4-default")

    def test_default_route_removal(self):
        assert self.trie.remove(P("0.0.0.0/0")) == "v4-default"
        assert self.trie.longest_match("99.0.0.1") is None
        # v6 default untouched.
        assert self.trie.longest_match(Address.parse("fe80::1"))[1] == "v6-default"

    def test_mixed_version_iteration_deterministic(self):
        keys = list(self.trie.keys())
        assert keys == sorted(keys)
        assert len(keys) == 5
