"""Property test: the flat tree is observationally equal to the node tree.

Same shape as ``test_classify_equivalence.py``: hypothesis drives
randomized operation sequences — tenant onboarding, tenant retirement,
resolve probes — through a ``PrefixTree`` and a ``FlatPrefixTree``
attached to one shared registry, and every observable must agree at every
step: resolve results (rule identity, exact flags, and order), stored
size, epoch, rule count, monitored-prefix listing, and exact-tenant
lookups.  Rules are interned per registry, so result equality is object
identity — the strictest possible match.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.config import ArtemisConfig, OwnedPrefix
from repro.net.prefix import Prefix
from repro.tenants import FlatPrefixTree, PrefixTree, TenantRegistry

#: Deliberately nested monitored pool: overlaps exercise the
#: most-specific-per-tenant overwrite and the exact flags.
_POOL = [
    "10.0.0.0/8",
    "10.0.0.0/16",
    "10.0.0.0/23",
    "10.0.0.0/24",
    "10.0.1.0/24",
    "10.1.0.0/16",
    "10.128.0.0/9",
    "192.168.0.0/24",
    "0.0.0.0/0",
    "2001:db8::/32",
    "2001:db8::/64",
]

_PROBES = [Prefix.parse(text) for text in _POOL] + [
    Prefix.parse("10.0.0.0/25"),
    Prefix.parse("10.0.0.128/25"),
    Prefix.parse("10.2.0.0/16"),
    Prefix.parse("11.0.0.0/8"),
    Prefix.parse("192.168.0.1/32"),
    Prefix.parse("172.16.0.0/12"),
    Prefix.parse("2001:db8::1/128"),
    Prefix.parse("2001:db9::/32"),
]

_OPS = st.lists(
    st.tuples(
        st.sampled_from(["add", "remove", "readd"]),
        st.integers(min_value=0, max_value=2 ** 16),
    ),
    min_size=1,
    max_size=24,
)


def _config(seed: int) -> ArtemisConfig:
    count = 1 + seed % 3
    chosen = {(seed + i * 7) % len(_POOL) for i in range(count)}
    entries = [
        OwnedPrefix(_POOL[index], [65000 + seed % 50])
        for index in sorted(chosen)
    ]
    return ArtemisConfig(entries)


def _observe(tree, probe):
    return [(id(rule), rule.tenant, exact) for rule, exact in tree.resolve(probe)]


@settings(max_examples=150, deadline=None)
@given(ops=_OPS)
def test_flat_tree_equivalent_under_randomized_churn(ops):
    registry = TenantRegistry()
    node = PrefixTree()
    flat = FlatPrefixTree()
    registry.attach_tree(node)
    registry.attach_tree(flat)
    live = []
    serial = 0
    for kind, seed in ops:
        if kind == "add" or (kind == "readd" and not live):
            name = f"tenant-{serial:04d}"
            serial += 1
            registry.add_tenant(name, _config(seed))
            live.append((name, seed))
        elif kind == "remove" and live:
            name, _seed = live.pop(seed % len(live))
            registry.remove_tenant(name)
        elif kind == "readd":
            # Retire and immediately re-onboard: exercises free-list
            # recycling against the epoch stamps.
            index = seed % len(live)
            name, tenant_seed = live[index]
            registry.remove_tenant(name)
            registry.add_tenant(name, _config(tenant_seed))
        assert node.epoch == flat.epoch
        assert node.num_rules == flat.num_rules
        assert len(node) == len(flat)
        for probe in _PROBES:
            assert _observe(node, probe) == _observe(flat, probe), probe
    assert node.monitored_prefixes() == flat.monitored_prefixes()
    for prefix in node.monitored_prefixes():
        assert node.tenants_at(prefix) == flat.tenants_at(prefix)
