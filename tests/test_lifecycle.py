"""End-to-end incident lifecycle: hijack → mitigate → hijack ends →
rollback → repeated incident handling in one continuous world."""

import pytest

from repro.core.log import IncidentLog
from repro.net.prefix import Prefix
from repro.testbed.scenario import HijackExperiment

from conftest import fast_scenario


def P(text):
    return Prefix.parse(text)


@pytest.fixture
def mitigated_world():
    """A world where one hijack has been detected and fully mitigated."""
    experiment = HijackExperiment(fast_scenario(seed=11))
    experiment.setup()
    log = IncidentLog(experiment.artemis)
    result = experiment.run()
    assert result.mitigated
    return experiment, log, result


class TestRollback:
    def test_rollback_after_hijack_ends(self, mitigated_world):
        experiment, _log, _result = mitigated_world
        network = experiment.network
        # The hijacker gives up.
        experiment.hijacker.withdraw(P("10.0.0.0/23"))
        network.run_until_converged()
        # ARTEMIS withdraws the de-aggregated /24s.  Controller programming
        # is not BGP activity, so advance the clock past its 10-20 s delay
        # before waiting for routing convergence.
        action = experiment.artemis.actions[0]
        experiment.artemis.mitigation.rollback(action)
        network.run_for(30.0)
        network.run_until_converged()
        victim = experiment.victim
        assert not victim.speaker.originates(P("10.0.0.0/24"))
        assert not victim.speaker.originates(P("10.0.1.0/24"))
        # The covering /23 is still announced and everyone routes to it.
        assert victim.speaker.originates(P("10.0.0.0/23"))
        assert experiment.tracker.all_route_to({victim.asn})

    def test_rib_sizes_shrink_after_rollback(self, mitigated_world):
        experiment, _log, _result = mitigated_world
        network = experiment.network
        probe_asn = next(
            asn for asn in network.asns()
            if asn not in (experiment.victim.asn, experiment.hijacker.asn)
        )
        before = len(network.speaker(probe_asn).loc_rib)
        experiment.hijacker.withdraw(P("10.0.0.0/23"))
        network.run_until_converged()
        experiment.artemis.mitigation.rollback(experiment.artemis.actions[0])
        network.run_for(30.0)
        network.run_until_converged()
        after = len(network.speaker(probe_asn).loc_rib)
        assert after < before  # the /24s (and hijacked /23) are gone


class TestRepeatedIncidents:
    def test_second_hijack_same_offender_extends_alert(self, mitigated_world):
        experiment, _log, _result = mitigated_world
        network = experiment.network
        # Same offender re-announces: the incident key matches the existing
        # (unresolved-by-manager) alert, so no duplicate incident fires.
        experiment.hijacker.withdraw(P("10.0.0.0/23"))
        network.run_until_converged()
        alerts_before = len(experiment.artemis.alerts)
        actions_before = len(experiment.artemis.actions)
        experiment.hijacker.announce(P("10.0.0.0/23"))
        network.run_for(600.0)
        assert len(experiment.artemis.alerts) == alerts_before
        assert len(experiment.artemis.actions) == actions_before

    def test_new_offender_is_new_incident(self, mitigated_world):
        experiment, log, _result = mitigated_world
        network = experiment.network
        # A different AS attacks a DIFFERENT half: because the /24s are
        # already announced by the victim, the attacker must go exact.
        second_attacker = experiment.testbed.create_virtual_as(
            experiment.testbed.pick_sites(1, exclude=experiment.victim.sites)
        )
        experiment.tracker.track_speaker(second_attacker.speaker)
        second_attacker.announce(P("10.0.0.0/24"))
        network.run_for(600.0)
        offenders = {alert.offender_asn for alert in experiment.artemis.alerts}
        assert second_attacker.asn in offenders
        assert len(experiment.artemis.alerts) >= 2
        # The log captured both incidents.
        alert_entries = [e for e in log.entries if e["event"] == "alert"]
        assert len(alert_entries) >= 2

    def test_lifecycle_log_is_ordered(self, mitigated_world):
        _experiment, log, _result = mitigated_world
        times = [e["time"] for e in log.entries if e["time"] is not None]
        assert times == sorted(times)
