"""Tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine


class TestScheduling:
    def test_events_fire_in_time_order(self):
        engine = Engine()
        log = []
        engine.schedule(2.0, lambda: log.append("b"))
        engine.schedule(1.0, lambda: log.append("a"))
        engine.schedule(3.0, lambda: log.append("c"))
        engine.run()
        assert log == ["a", "b", "c"]

    def test_ties_fire_in_schedule_order(self):
        engine = Engine()
        log = []
        for name in "abc":
            engine.schedule(1.0, log.append, name)
        engine.run()
        assert log == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        engine = Engine()
        seen = []
        engine.schedule(5.5, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [5.5]
        assert engine.now == 5.5

    def test_args_passed(self):
        engine = Engine()
        result = []
        engine.schedule(1.0, lambda a, b: result.append(a + b), 2, 3)
        engine.run()
        assert result == [5]

    def test_negative_delay_rejected(self):
        engine = Engine()
        with pytest.raises(SimulationError):
            engine.schedule(-0.1, lambda: None)

    def test_schedule_at_past_rejected(self):
        engine = Engine()
        engine.schedule(1.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule_at(0.5, lambda: None)

    def test_nested_scheduling(self):
        engine = Engine()
        log = []

        def outer():
            log.append(("outer", engine.now))
            engine.schedule(1.0, lambda: log.append(("inner", engine.now)))

        engine.schedule(1.0, outer)
        engine.run()
        assert log == [("outer", 1.0), ("inner", 2.0)]


class TestCancellation:
    def test_cancel_prevents_firing(self):
        engine = Engine()
        log = []
        handle = engine.schedule(1.0, lambda: log.append("x"))
        assert handle.cancel()
        engine.run()
        assert log == []

    def test_cancel_after_fire_returns_false(self):
        engine = Engine()
        handle = engine.schedule(1.0, lambda: None)
        engine.run()
        assert handle.fired
        assert not handle.cancel()

    def test_pending_states(self):
        engine = Engine()
        handle = engine.schedule(1.0, lambda: None)
        assert handle.pending
        engine.run()
        assert not handle.pending


class TestRunBounds:
    def test_run_until_leaves_future_events(self):
        engine = Engine()
        log = []
        engine.schedule(1.0, lambda: log.append(1))
        engine.schedule(10.0, lambda: log.append(10))
        engine.run(until=5.0)
        assert log == [1]
        assert engine.now == 5.0
        engine.run()
        assert log == [1, 10]

    def test_run_for(self):
        engine = Engine()
        engine.run_for(7.0)
        assert engine.now == 7.0

    def test_max_events_guard(self):
        engine = Engine()

        def loop():
            engine.schedule(0.1, loop)

        engine.schedule(0.1, loop)
        with pytest.raises(SimulationError):
            engine.run(max_events=100)

    def test_reentrancy_rejected(self):
        engine = Engine()

        def reenter():
            engine.run()

        engine.schedule(1.0, reenter)
        with pytest.raises(SimulationError):
            engine.run()

    def test_events_processed_counter(self):
        engine = Engine()
        for _ in range(5):
            engine.schedule(1.0, lambda: None)
        engine.run()
        assert engine.events_processed == 5


class TestPeriodic:
    def test_fires_repeatedly(self):
        engine = Engine()
        log = []
        engine.schedule_periodic(1.0, lambda: log.append(engine.now))
        engine.run(until=5.5)
        assert log == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_first_delay_override(self):
        engine = Engine()
        log = []
        engine.schedule_periodic(2.0, lambda: log.append(engine.now), first_delay=0.5)
        engine.run(until=5.0)
        assert log == [0.5, 2.5, 4.5]

    def test_cancel_stops_series(self):
        engine = Engine()
        log = []
        handle = engine.schedule_periodic(1.0, lambda: log.append(engine.now))

        def stop():
            handle.cancel()

        engine.schedule(2.5, stop)
        engine.run(until=10.0)
        assert log == [1.0, 2.0]

    def test_invalid_interval(self):
        with pytest.raises(SimulationError):
            Engine().schedule_periodic(0.0, lambda: None)


class TestIntrospection:
    def test_peek_time_skips_cancelled(self):
        engine = Engine()
        first = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        first.cancel()
        assert engine.peek_time() == 2.0

    def test_peek_time_empty(self):
        assert Engine().peek_time() is None

    def test_pending_events(self):
        engine = Engine()
        a = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        a.cancel()
        assert engine.pending_events() == 1

    def test_step_returns_false_when_empty(self):
        assert Engine().step() is False


class TestTombstones:
    def test_cancel_counts_tombstones(self):
        engine = Engine()
        handles = [engine.schedule(float(i + 1), lambda: None) for i in range(10)]
        handles[3].cancel()
        handles[7].cancel()
        assert engine.tombstones == 2
        assert engine.pending_events() == 8

    def test_double_cancel_counts_once(self):
        engine = Engine()
        handle = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        assert handle.cancel()
        assert not handle.cancel()
        assert engine.tombstones == 1

    def test_mass_cancellation_compacts_queue(self):
        engine = Engine()
        keep = [engine.schedule(float(i + 1), lambda: None) for i in range(10)]
        doomed = [engine.schedule(1000.0, lambda: None) for _ in range(200)]
        for handle in doomed:
            handle.cancel()
        # Tombstones exceeded half the queue well past the size floor, so
        # the heap was rebuilt at least once; the live count stays exact
        # even though stragglers below the size floor may linger lazily.
        assert engine.compactions >= 1
        assert engine.tombstones < len(doomed)
        assert engine.pending_events() == len(keep)
        assert len(engine._queue) < len(keep) + len(doomed)

    def test_small_queues_never_compact(self):
        engine = Engine()
        handles = [engine.schedule(float(i + 1), lambda: None) for i in range(10)]
        for handle in handles:
            handle.cancel()
        assert engine.compactions == 0
        assert engine.pending_events() == 0

    def test_run_purges_head_tombstones(self):
        engine = Engine()
        log = []
        doomed = engine.schedule(1.0, lambda: log.append("doomed"))
        engine.schedule(2.0, lambda: log.append("live"))
        doomed.cancel()
        engine.run()
        assert log == ["live"]
        assert engine.tombstones == 0

    def test_cancelled_events_never_fire_after_compaction(self):
        engine = Engine()
        log = []
        live = [engine.schedule(float(i + 1), log.append, i) for i in range(5)]
        doomed = [engine.schedule(0.5, log.append, "bad") for _ in range(200)]
        for handle in doomed:
            handle.cancel()
        engine.run()
        assert log == list(range(5))
        assert all(h.fired for h in live)

    def test_mid_run_compaction_keeps_draining_new_events(self):
        # Regression: a callback that mass-cancels queued events can trip
        # the compaction threshold while run() is draining.  The rebuild
        # must not strand run()'s view of the queue — events scheduled
        # after the compaction (by the same or later callbacks) must still
        # fire, and the tombstone counter must stay non-negative.
        engine = Engine()
        log = []
        doomed = [engine.schedule(1000.0, log.append, "bad") for _ in range(200)]

        def purge_and_reschedule() -> None:
            for handle in doomed:
                handle.cancel()
            engine.schedule(1.0, log.append, "after-compaction")

        engine.schedule(1.0, purge_and_reschedule)
        engine.schedule(3.0, log.append, "tail")
        engine.run()
        assert engine.compactions >= 1
        assert log == ["after-compaction", "tail"]
        assert engine.tombstones == 0
        assert engine.pending_events() == 0

    def test_mid_run_compaction_inside_step_and_peek(self):
        # step() and peek_time() hold the same alias; cancelling from a
        # stepped callback must leave them coherent too.
        engine = Engine()
        log = []
        doomed = [engine.schedule(1000.0, log.append, "bad") for _ in range(200)]

        def purge() -> None:
            for handle in doomed:
                handle.cancel()
            engine.schedule(0.5, log.append, "late")

        engine.schedule(1.0, purge)
        assert engine.step()  # fires purge, compacting mid-step
        assert engine.compactions >= 1
        assert engine.peek_time() == 1.5
        assert engine.step()
        assert not engine.step()
        assert log == ["late"]
        assert engine.tombstones >= 0


class TestPeriodicHandleState:
    def test_fired_and_firings_track_progress(self):
        engine = Engine()
        handle = engine.schedule_periodic(1.0, lambda: None)
        assert not handle.fired
        assert handle.firings == 0
        engine.run(until=3.5)
        assert handle.fired
        assert handle.firings == 3

    def test_time_tracks_next_firing(self):
        engine = Engine()
        handle = engine.schedule_periodic(1.0, lambda: None, first_delay=0.5)
        assert handle.time == 0.5
        engine.run(until=2.0)
        assert handle.time == 2.5

    def test_pending_until_cancelled_even_after_firing(self):
        engine = Engine()
        handle = engine.schedule_periodic(1.0, lambda: None)
        engine.run(until=2.5)
        assert handle.pending  # the series is still live
        assert handle.cancel()
        assert not handle.pending
        assert not handle.cancel()

    def test_cancel_drops_queued_firing(self):
        engine = Engine()
        handle = engine.schedule_periodic(1.0, lambda: None)
        engine.run(until=1.5)
        handle.cancel()
        # The queued next firing became a tombstone, not a live event.
        assert engine.pending_events() == 0

    def test_repr_reports_series_state(self):
        engine = Engine()
        handle = engine.schedule_periodic(2.0, lambda: None)
        engine.run(until=4.5)
        text = repr(handle)
        assert "firings=2" in text
        assert "next=6.000" in text
