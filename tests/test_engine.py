"""Tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine


class TestScheduling:
    def test_events_fire_in_time_order(self):
        engine = Engine()
        log = []
        engine.schedule(2.0, lambda: log.append("b"))
        engine.schedule(1.0, lambda: log.append("a"))
        engine.schedule(3.0, lambda: log.append("c"))
        engine.run()
        assert log == ["a", "b", "c"]

    def test_ties_fire_in_schedule_order(self):
        engine = Engine()
        log = []
        for name in "abc":
            engine.schedule(1.0, log.append, name)
        engine.run()
        assert log == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        engine = Engine()
        seen = []
        engine.schedule(5.5, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [5.5]
        assert engine.now == 5.5

    def test_args_passed(self):
        engine = Engine()
        result = []
        engine.schedule(1.0, lambda a, b: result.append(a + b), 2, 3)
        engine.run()
        assert result == [5]

    def test_negative_delay_rejected(self):
        engine = Engine()
        with pytest.raises(SimulationError):
            engine.schedule(-0.1, lambda: None)

    def test_schedule_at_past_rejected(self):
        engine = Engine()
        engine.schedule(1.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule_at(0.5, lambda: None)

    def test_nested_scheduling(self):
        engine = Engine()
        log = []

        def outer():
            log.append(("outer", engine.now))
            engine.schedule(1.0, lambda: log.append(("inner", engine.now)))

        engine.schedule(1.0, outer)
        engine.run()
        assert log == [("outer", 1.0), ("inner", 2.0)]


class TestCancellation:
    def test_cancel_prevents_firing(self):
        engine = Engine()
        log = []
        handle = engine.schedule(1.0, lambda: log.append("x"))
        assert handle.cancel()
        engine.run()
        assert log == []

    def test_cancel_after_fire_returns_false(self):
        engine = Engine()
        handle = engine.schedule(1.0, lambda: None)
        engine.run()
        assert handle.fired
        assert not handle.cancel()

    def test_pending_states(self):
        engine = Engine()
        handle = engine.schedule(1.0, lambda: None)
        assert handle.pending
        engine.run()
        assert not handle.pending


class TestRunBounds:
    def test_run_until_leaves_future_events(self):
        engine = Engine()
        log = []
        engine.schedule(1.0, lambda: log.append(1))
        engine.schedule(10.0, lambda: log.append(10))
        engine.run(until=5.0)
        assert log == [1]
        assert engine.now == 5.0
        engine.run()
        assert log == [1, 10]

    def test_run_for(self):
        engine = Engine()
        engine.run_for(7.0)
        assert engine.now == 7.0

    def test_max_events_guard(self):
        engine = Engine()

        def loop():
            engine.schedule(0.1, loop)

        engine.schedule(0.1, loop)
        with pytest.raises(SimulationError):
            engine.run(max_events=100)

    def test_reentrancy_rejected(self):
        engine = Engine()

        def reenter():
            engine.run()

        engine.schedule(1.0, reenter)
        with pytest.raises(SimulationError):
            engine.run()

    def test_events_processed_counter(self):
        engine = Engine()
        for _ in range(5):
            engine.schedule(1.0, lambda: None)
        engine.run()
        assert engine.events_processed == 5


class TestPeriodic:
    def test_fires_repeatedly(self):
        engine = Engine()
        log = []
        engine.schedule_periodic(1.0, lambda: log.append(engine.now))
        engine.run(until=5.5)
        assert log == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_first_delay_override(self):
        engine = Engine()
        log = []
        engine.schedule_periodic(2.0, lambda: log.append(engine.now), first_delay=0.5)
        engine.run(until=5.0)
        assert log == [0.5, 2.5, 4.5]

    def test_cancel_stops_series(self):
        engine = Engine()
        log = []
        handle = engine.schedule_periodic(1.0, lambda: log.append(engine.now))

        def stop():
            handle.cancel()

        engine.schedule(2.5, stop)
        engine.run(until=10.0)
        assert log == [1.0, 2.0]

    def test_invalid_interval(self):
        with pytest.raises(SimulationError):
            Engine().schedule_periodic(0.0, lambda: None)


class TestIntrospection:
    def test_peek_time_skips_cancelled(self):
        engine = Engine()
        first = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        first.cancel()
        assert engine.peek_time() == 2.0

    def test_peek_time_empty(self):
        assert Engine().peek_time() is None

    def test_pending_events(self):
        engine = Engine()
        a = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        a.cancel()
        assert engine.pending_events() == 1

    def test_step_returns_false_when_empty(self):
        assert Engine().step() is False
