"""Tests for batch archives and the monitoring deployment helper."""

import pytest

from repro.errors import FeedError
from repro.feeds.batch import BatchArchive
from repro.feeds.collector import RouteCollector
from repro.feeds.deploy import deploy_monitors
from repro.net.prefix import Prefix
from repro.sim.latency import Constant
from repro.sim.rng import SeededRNG


def P(text):
    return Prefix.parse(text)


def make_archive(net, vantage=3, **kwargs):
    kwargs.setdefault("fetch_delay", Constant(5.0))
    archive = BatchArchive(net.engine, rng=SeededRNG(0), **kwargs)
    collector = RouteCollector("batch-c0", net.engine)
    archive.attach_collector(collector)
    net.add_monitor_session(vantage, collector)
    return archive


class TestBatchArchive:
    def test_nothing_before_publication(self, net7):
        archive = make_archive(net7, update_interval=900.0)
        events = []
        archive.subscribe(events.append)
        net7.announce(6, "10.0.0.0/23")
        net7.run_until_converged()
        net7.run_for(800.0)  # before the 15-min boundary
        assert events == []

    def test_updates_delivered_after_interval_plus_fetch(self, net7):
        archive = make_archive(net7, update_interval=900.0)
        events = []
        archive.subscribe(events.append)
        net7.announce(6, "10.0.0.0/23")
        net7.run_until_converged()
        net7.run_for(1000.0)
        assert events
        event = events[0]
        assert event.delivered_at >= 900.0 + 5.0
        assert event.observed_at < 900.0  # observation predates the file

    def test_rib_dump_contains_current_table(self, net7):
        archive = make_archive(
            net7, update_interval=100_000.0, rib_interval=7200.0
        )
        events = []
        archive.subscribe(events.append)
        net7.announce(6, "10.0.0.0/23")
        net7.run_until_converged()
        net7.run_for(7300.0)
        assert any(e.prefix == P("10.0.0.0/23") for e in events)

    def test_publish_updates_can_be_disabled(self, net7):
        archive = make_archive(
            net7, update_interval=900.0, rib_interval=7200.0, publish_updates=False
        )
        events = []
        archive.subscribe(events.append)
        net7.announce(6, "10.0.0.0/23")
        net7.run_until_converged()
        net7.run_for(2000.0)  # two update windows, no RIB dump yet
        assert events == []

    def test_must_publish_something(self, net7):
        with pytest.raises(FeedError):
            BatchArchive(net7.engine, publish_ribs=False, publish_updates=False)

    def test_prefix_filter(self, net7):
        archive = make_archive(net7, update_interval=900.0)
        events = []
        archive.subscribe(events.append, prefixes=[P("10.0.0.0/23")])
        net7.announce(6, "10.0.0.0/23")
        net7.announce(6, "99.0.0.0/16")
        net7.run_until_converged()
        net7.run_for(1000.0)
        assert events
        assert {e.prefix for e in events} == {P("10.0.0.0/23")}

    def test_intervals_validated(self, net7):
        with pytest.raises(FeedError):
            BatchArchive(net7.engine, update_interval=0.0)

    def test_deploy_helper(self, net7):
        archive = BatchArchive.deploy(net7, [3, 4], seed=1, fetch_delay=Constant(1.0))
        events = []
        archive.subscribe(events.append)
        net7.announce(6, "10.0.0.0/23")
        net7.run_until_converged()
        net7.run_for(1000.0)
        assert {e.vantage_asn for e in events} == {3, 4}


class TestDeployMonitors:
    def test_counts(self, gen_network):
        deployment = deploy_monitors(
            gen_network,
            seed=1,
            num_ris_vantages=5,
            num_bgpmon_vantages=3,
            num_lgs=4,
            num_batch_vantages=3,
        )
        assert len(deployment.ris_vantages) == 5
        assert len(deployment.bgpmon_vantages) == 3
        assert len(deployment.lg_asns) == 4
        assert len(deployment.batch_vantages) == 3
        assert deployment.batch is not None
        assert len(deployment.periscope.looking_glasses) == 4

    def test_without_batch(self, gen_network):
        deployment = deploy_monitors(gen_network, seed=1, with_batch=False)
        assert deployment.batch is None
        assert deployment.batch_vantages == []

    def test_deterministic(self, graph7):
        from conftest import fast_network_config
        from repro.internet.network import Network
        import conftest

        picks = []
        for _ in range(2):
            net = Network(conftest.tiny_graph(), config=fast_network_config(), seed=2)
            deployment = deploy_monitors(
                net, seed=2, num_ris_vantages=3, num_bgpmon_vantages=2,
                num_lgs=2, num_batch_vantages=2,
            )
            picks.append(
                (
                    deployment.ris_vantages,
                    deployment.bgpmon_vantages,
                    deployment.lg_asns,
                )
            )
        assert picks[0] == picks[1]

    def test_vantages_are_real_ases(self, gen_network):
        deployment = deploy_monitors(gen_network, seed=3)
        for asn in deployment.all_vantage_asns:
            assert asn in gen_network.speakers

    def test_too_many_vantages_rejected(self, net7):
        with pytest.raises(FeedError):
            deploy_monitors(net7, num_ris_vantages=100)

    def test_streams_property(self, gen_network):
        deployment = deploy_monitors(gen_network, seed=1)
        assert deployment.ris in deployment.streams
        assert deployment.bgpmon in deployment.streams
