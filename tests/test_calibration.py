"""Guards the default timing calibration against silent regressions.

Runs a small default-configuration suite (full churn, default feeds) and
checks the paper-regime acceptance bands codified in
:mod:`repro.eval.calibration`.  Marked slow-ish (~15 s) but this is the
test that keeps the headline reproduction honest.
"""

import pytest

from repro.eval.calibration import DEFAULT_BANDS, CalibrationReport, check_calibration
from repro.eval.experiments import run_artemis_suite
from repro.testbed.scenario import ExperimentResult, ScenarioConfig
from repro.topology.generator import GeneratorConfig


class TestCheckLogic:
    def _result(self, detect=50.0, announce=15.0, complete=170.0, total=235.0,
                mitigated=True, seed=0):
        result = ExperimentResult()
        result.seed = seed
        result.detection_delay = detect
        result.announce_delay = announce
        result.completion_delay = complete
        result.total_time = total
        result.mitigated = mitigated
        return result

    def test_paper_numbers_pass(self):
        # The paper's own means (45 / 15 / 300 / 360) sit inside the bands.
        report = check_calibration(
            [self._result(detect=45.0, announce=15.0, complete=300.0, total=360.0)]
        )
        assert report.ok, report.to_text()

    def test_empty_fails(self):
        assert not check_calibration([]).ok

    def test_band_violation_detected(self):
        report = check_calibration([self._result(detect=600.0, total=800.0)])
        assert any("detection_delay" in v for v in report.violations)

    def test_direction_violation_detected(self):
        report = check_calibration(
            [self._result(detect=110.0, complete=65.0, total=200.0)]
        )
        assert any("dominate" in v for v in report.violations)

    def test_unmitigated_run_flagged(self):
        report = check_calibration([self._result(mitigated=False, seed=7)])
        assert any("seeds [7]" in v for v in report.violations)

    def test_report_text(self):
        report = check_calibration([self._result()])
        text = report.to_text()
        assert "detection_delay" in text


@pytest.mark.slow
class TestDefaultsAreCalibrated:
    def test_default_scenario_within_bands(self):
        # Small but REAL default configuration: full churn, default feeds,
        # default MRAI — three seeds keep this under ~20 s of wall time.
        template = ScenarioConfig(
            topology=GeneratorConfig(num_tier1=5, num_tier2=20, num_stubs=60)
        )
        results = run_artemis_suite(template, seeds=[0, 1, 2])
        report = check_calibration(results)
        assert report.ok, report.to_text()
