"""Adversarial feed-edge tests: duplicated, reordered, and replayed updates.

The monitoring plane must stay truthful when the transport misbehaves:
duplicate UPDATE delivery must not spawn duplicate incidents, a withdraw
overtaking the announcement it cancels must not fabricate vantage state,
and a replayed stale announcement must not resurrect a resolved incident.
These are the unit-level counterparts of the end-to-end chaos suite in
``test_faults.py``.
"""

import pytest

from repro.bgp.messages import Announcement, UpdateMessage, Withdrawal
from repro.core.alerts import AlertStatus
from repro.core.config import ArtemisConfig, OwnedPrefix
from repro.core.detection import DetectionService
from repro.core.monitoring import MonitoringService
from repro.faults import ChannelFault
from repro.feeds.collector import RouteCollector
from repro.feeds.events import FeedEvent
from repro.feeds.ris import RISLiveStream
from repro.net.prefix import Prefix
from repro.sim.engine import Engine
from repro.sim.latency import Constant
from repro.sim.rng import SeededRNG

HIJACKER = 666
VANTAGE = 3


def P(text):
    return Prefix.parse(text)


def event(prefix="10.0.0.0/23", path=(3, 2, 666), source="ris", t=10.0, kind="A",
          vantage=VANTAGE):
    return FeedEvent(
        source=source,
        collector=f"{source}-c0",
        vantage_asn=vantage,
        kind=kind,
        prefix=P(prefix),
        as_path=tuple(path) if kind == "A" else (),
        observed_at=t - 1.0,
        delivered_at=t,
    )


def make_config(**kw):
    defaults = dict(owned=[OwnedPrefix("10.0.0.0/23", {64500})])
    defaults.update(kw)
    return ArtemisConfig(**defaults)


def announce(prefix, path=(VANTAGE, HIJACKER)):
    return UpdateMessage(path[0], announcements=[Announcement(P(prefix), tuple(path))])


def withdraw(prefix, sender=VANTAGE):
    return UpdateMessage(sender, withdrawals=[Withdrawal(P(prefix))])


class Rig:
    """One collector feeding one RIS-style stream into detection+monitoring."""

    def __init__(self, latency=1.0, **config_kw):
        self.engine = Engine()
        self.collector = RouteCollector("ris-rrc00", self.engine)
        self.collector.register_vantage(VANTAGE)
        self.stream = RISLiveStream(
            self.engine, latency=Constant(latency), rng=SeededRNG(7)
        )
        self.stream.attach_collector(self.collector)
        self.config = make_config(**config_kw)
        self.detection = DetectionService(self.config)
        self.monitoring = MonitoringService(self.config)
        self.detection.start([self.stream])
        self.monitoring.start([self.stream])
        self.fired = []
        self.detection.on_alert(self.fired.append)

    def deliver(self, message, vantage=VANTAGE):
        self.collector.deliver(vantage, message)

    def run(self, duration=30.0):
        self.engine.run_for(duration)

    @property
    def alerts(self):
        return self.detection.alert_manager.alerts


class TestDuplicateDelivery:
    def test_channel_duplicate_creates_one_incident(self):
        rig = Rig()
        channel = ChannelFault(SeededRNG(1), dup=1.0)
        rig.collector.fault_channel = channel
        rig.deliver(announce("10.0.0.0/23"))
        rig.run()
        assert channel.messages_duplicated == 1
        # Both copies were delivered downstream...
        assert rig.stream.events_delivered >= 4  # 2 copies x 2 subscribers
        # ...but the incident exists exactly once.
        assert len(rig.fired) == 1
        assert len(rig.alerts) == 1
        alert = rig.alerts[0]
        assert len(alert.evidence) == 2

    def test_first_evidence_keyed_once_per_source(self):
        rig = Rig()
        rig.collector.fault_channel = ChannelFault(SeededRNG(1), dup=1.0)
        rig.deliver(announce("10.0.0.0/23"))
        rig.run()
        alert = rig.alerts[0]
        per_source = rig.detection.first_evidence[alert.id]
        assert set(per_source) == {"ris"}
        # The recorded time is the first copy's delivery, i.e. the alert's
        # own detection time — later duplicates never move it.
        assert per_source["ris"] == alert.detected_at

    def test_session_retransmit_does_not_duplicate_alert(self):
        # The same UPDATE arriving twice without any fault channel (a BGP
        # session retransmit after an ack loss) must also coalesce.
        rig = Rig()
        message = announce("10.0.0.0/23")
        rig.deliver(message)
        rig.deliver(message)
        rig.run()
        assert len(rig.fired) == 1
        assert len(rig.alerts) == 1
        assert len(rig.alerts[0].evidence) == 2

    def test_duplicate_does_not_double_monitoring_transitions(self):
        rig = Rig()
        rig.collector.fault_channel = ChannelFault(SeededRNG(1), dup=1.0)
        rig.deliver(announce("10.0.0.0/23"))
        rig.run()
        # The vantage flipped to the hijacker exactly once; the duplicate
        # re-applied identical state and must not log a second transition.
        flips = [t for t in rig.monitoring.transitions if t[1] == VANTAGE]
        assert len(flips) == 1
        assert flips[0][3] == HIJACKER


class TestWithdrawBeforeAnnounce:
    def test_early_withdraw_is_noop(self):
        # The withdraw overtakes the announcement it cancels: applied to an
        # empty vantage table it must do nothing — no state, no transition,
        # no alert.
        rig = Rig()
        rig.deliver(withdraw("10.0.0.0/23"))
        rig.run()
        assert rig.alerts == []
        assert rig.monitoring.transitions == []
        state = rig.monitoring.vantages.get(VANTAGE)
        assert state is None or state.routes() == []

    def test_reordered_announce_still_one_incident(self):
        # Hijacker announces then withdraws; the channel delays the announce
        # past the withdraw.  The stale announcement still (correctly)
        # raises the alert — ARTEMIS cannot know it was cancelled — but only
        # one incident exists and the pipeline does not wedge.
        rig = Rig()
        channel = ChannelFault(SeededRNG(2), reorder=1.0, jitter=5.0)
        rig.collector.fault_channel = channel
        rig.deliver(announce("10.0.0.0/23"))
        rig.collector.fault_channel = None
        rig.deliver(withdraw("10.0.0.0/23"))
        rig.run()
        assert channel.messages_reordered == 1
        assert len(rig.fired) == 1
        assert len(rig.alerts) == 1
        # Last writer wins under reordering: the vantage is left believing
        # the (stale) hijack route.
        state = rig.monitoring.vantages[VANTAGE]
        assert state.origin_for_address(P("10.0.0.0/23").network) == HIJACKER

    def test_withdraw_after_announce_clears_state(self):
        # Control: in-order delivery does clear the vantage table.
        rig = Rig()
        rig.deliver(announce("10.0.0.0/23"))
        rig.run(5.0)
        rig.deliver(withdraw("10.0.0.0/23"))
        rig.run()
        state = rig.monitoring.vantages[VANTAGE]
        assert state.origin_for_address(P("10.0.0.0/23").network) is None
        # The alert raised while the hijack was live is unaffected.
        assert len(rig.alerts) == 1


class TestStaleReplay:
    def _detector(self, cooldown=50.0):
        detection = DetectionService(make_config(alert_cooldown=cooldown))
        fired = []
        detection.on_alert(fired.append)
        return detection, fired

    def test_replay_within_cooldown_attaches_to_resolved(self):
        detection, fired = self._detector(cooldown=50.0)
        detection.handle_event(event(t=10.0))
        alert = detection.alert_manager.alerts[0]
        alert.resolve(20.0)
        detection.handle_event(event(t=30.0, vantage=4))  # replayed stale copy
        assert len(detection.alert_manager) == 1
        assert len(fired) == 1  # no second incident announced
        assert alert.status is AlertStatus.RESOLVED  # no resurrection
        assert len(alert.evidence) == 2  # but the replay is kept on record

    def test_replay_after_cooldown_is_fresh_incident(self):
        detection, fired = self._detector(cooldown=50.0)
        detection.handle_event(event(t=10.0))
        old = detection.alert_manager.alerts[0]
        old.resolve(20.0)
        detection.handle_event(event(t=100.0))  # past 20 + 50 cooldown
        assert len(detection.alert_manager) == 2
        assert len(fired) == 2
        new = detection.alert_manager.alerts[1]
        assert new.id != old.id
        assert new.status is AlertStatus.ACTIVE
        assert old.status is AlertStatus.RESOLVED
        assert len(old.evidence) == 1  # the refire did not touch the old record

    def test_fresh_incident_gets_fresh_evidence_keying(self):
        detection, _ = self._detector(cooldown=50.0)
        detection.handle_event(event(t=10.0))
        old = detection.alert_manager.alerts[0]
        old.resolve(20.0)
        detection.handle_event(event(t=100.0, source="bgpmon"))
        new = detection.alert_manager.alerts[1]
        # The new incident's per-source table starts from scratch: it must
        # not inherit the old incident's "ris at t=10" entry.
        assert detection.first_evidence[new.id] == {"bgpmon": 100.0}
        assert detection.first_evidence[old.id] == {"ris": 10.0}
        assert detection.per_source_delay(new, 95.0) == {"bgpmon": 5.0}

    def test_replay_through_stream_no_resurrection(self):
        # End-to-end flavour: the same hijack UPDATE replayed after the
        # operator resolved the incident, inside the cooldown window.
        rig = Rig(alert_cooldown=300.0)
        message = announce("10.0.0.0/23")
        rig.deliver(message)
        rig.run(10.0)
        assert len(rig.alerts) == 1
        alert = rig.alerts[0]
        alert.resolve(rig.engine.now)
        rig.deliver(message)  # stale replay
        rig.run(10.0)
        assert len(rig.alerts) == 1
        assert alert.status is AlertStatus.RESOLVED
        assert len(rig.fired) == 1

    def test_lost_message_checks_nothing(self):
        # A fully lossy channel means the event never reaches detection at
        # all — no half-applied state.
        rig = Rig()
        channel = ChannelFault(SeededRNG(3), loss=1.0)
        rig.collector.fault_channel = channel
        rig.deliver(announce("10.0.0.0/23"))
        rig.run()
        assert channel.messages_dropped == 1
        assert rig.detection.events_checked == 0
        assert rig.alerts == []
