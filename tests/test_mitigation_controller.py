"""Tests for the SDN controller and the mitigation service."""

import pytest

from repro.bgp.speaker import BGPSpeaker
from repro.core.alerts import AlertStatus, AlertType, HijackAlert
from repro.core.config import ArtemisConfig, OwnedPrefix
from repro.core.mitigation import MitigationService
from repro.errors import MitigationError
from repro.feeds.events import FeedEvent
from repro.net.prefix import Prefix
from repro.sdn.controller import BGPController
from repro.sim.engine import Engine
from repro.sim.latency import Constant
from repro.sim.rng import SeededRNG


def P(text):
    return Prefix.parse(text)


def make_alert(alert_type=AlertType.EXACT_ORIGIN, owned="10.0.0.0/23",
               announced="10.0.0.0/23", offender=666):
    event = FeedEvent(
        source="ris", collector="c0", vantage_asn=3, kind="A",
        prefix=P(announced), as_path=(3, offender),
        observed_at=9.0, delivered_at=10.0,
    )
    return HijackAlert(alert_type, P(owned), P(announced), offender, event)


@pytest.fixture
def world():
    engine = Engine()
    router = BGPSpeaker(64500, engine, rng=SeededRNG(1))
    controller = BGPController(
        engine, [router], programming_delay=Constant(15.0), rng=SeededRNG(2)
    )
    return engine, router, controller


class TestController:
    def test_announce_after_programming_delay(self, world):
        engine, router, controller = world
        op = controller.announce_prefix("10.0.0.0/24")
        assert op.pending
        assert not router.originates(P("10.0.0.0/24"))
        engine.run()
        assert op.completed_at == 15.0
        assert op.latency == 15.0
        assert router.originates(P("10.0.0.0/24"))

    def test_withdraw(self, world):
        engine, router, controller = world
        controller.announce_prefix("10.0.0.0/24")
        engine.run()
        controller.withdraw_prefix("10.0.0.0/24")
        engine.run()
        assert not router.originates(P("10.0.0.0/24"))

    def test_withdraw_not_originated_is_noop(self, world):
        engine, router, controller = world
        op = controller.withdraw_prefix("10.0.0.0/24")
        engine.run()
        assert op.completed_at is not None

    def test_on_complete_callback(self, world):
        engine, router, controller = world
        done = []
        controller.announce_prefix("10.0.0.0/24", on_complete=done.append)
        engine.run()
        assert len(done) == 1 and done[0].kind == "announce"

    def test_unknown_router_rejected(self, world):
        _engine, _router, controller = world
        with pytest.raises(MitigationError):
            controller.announce_prefix("10.0.0.0/24", router_asns=[999])

    def test_needs_routers(self):
        with pytest.raises(MitigationError):
            BGPController(Engine(), [])

    def test_add_router(self, world):
        engine, router, controller = world
        other = BGPSpeaker(64501, engine, rng=SeededRNG(3))
        controller.add_router(other)
        controller.announce_prefix("10.0.0.0/24")
        engine.run()
        assert other.originates(P("10.0.0.0/24"))
        with pytest.raises(MitigationError):
            controller.add_router(other)

    def test_ops_recorded(self, world):
        engine, _router, controller = world
        controller.announce_prefix("10.0.0.0/24")
        controller.withdraw_prefix("10.0.0.0/24")
        assert len(controller.ops) == 2


def make_service(controller, **config_kw):
    config = ArtemisConfig([OwnedPrefix("10.0.0.0/23", {64500})], **config_kw)
    return MitigationService(config, controller)


class TestMitigationPlanning:
    def test_exact_hijack_deaggregates(self, world):
        _engine, _router, controller = world
        service = make_service(controller)
        action = service.plan(make_alert())
        assert action.strategy == "deaggregate"
        assert action.prefixes == [P("10.0.0.0/24"), P("10.0.1.0/24")]
        assert action.expected_full_recovery

    def test_deaggregation_levels_capped_by_filter_limit(self, world):
        _engine, _router, controller = world
        service = make_service(controller, deaggregation_levels=5)
        action = service.plan(make_alert())
        # /23 with 5 levels would be /28s, but /24 is the filtering limit.
        assert all(p.length == 24 for p in action.prefixes)
        assert len(action.prefixes) == 2

    def test_subprefix_hijack_targets_announced_prefix(self, world):
        _engine, _router, controller = world
        service = make_service(controller)
        alert = make_alert(
            alert_type=AlertType.SUB_PREFIX, announced="10.0.0.0/24"
        )
        action = service.plan(alert)
        # /24 cannot be de-aggregated below the filter limit → compete.
        assert action.strategy == "compete"
        assert action.prefixes == [P("10.0.0.0/24")]
        assert not action.expected_full_recovery

    def test_slash24_owned_prefix_competes(self, world):
        _engine, _router, controller = world
        config = ArtemisConfig([OwnedPrefix("10.0.0.0/24", {64500})])
        service = MitigationService(config, controller)
        alert = make_alert(owned="10.0.0.0/24", announced="10.0.0.0/24")
        action = service.plan(alert)
        assert action.strategy == "compete"
        assert not action.expected_full_recovery

    def test_path_hijack_deaggregates_owned(self, world):
        _engine, _router, controller = world
        service = make_service(controller)
        alert = make_alert(alert_type=AlertType.PATH)
        action = service.plan(alert)
        assert action.strategy == "deaggregate"
        assert action.prefixes == [P("10.0.0.0/24"), P("10.0.1.0/24")]


class TestMitigationExecution:
    def test_execute_programs_routers(self, world):
        engine, router, controller = world
        service = make_service(controller)
        alert = make_alert()
        action = service.execute(alert)
        assert alert.status is AlertStatus.MITIGATING
        engine.run()
        assert action.announced_at == engine.now
        assert action.announce_delay == pytest.approx(15.0)
        assert router.originates(P("10.0.0.0/24"))
        assert router.originates(P("10.0.1.0/24"))

    def test_announced_callback(self, world):
        engine, _router, controller = world
        service = make_service(controller)
        done = []
        service.on_announced(done.append)
        service.execute(make_alert())
        engine.run()
        assert len(done) == 1

    def test_execute_resolved_alert_rejected(self, world):
        _engine, _router, controller = world
        service = make_service(controller)
        alert = make_alert()
        alert.resolve(50.0)
        with pytest.raises(MitigationError):
            service.execute(alert)

    def test_rollback_withdraws_non_owned(self, world):
        engine, router, controller = world
        service = make_service(controller)
        action = service.execute(make_alert())
        engine.run()
        service.rollback(action)
        engine.run()
        assert not router.originates(P("10.0.0.0/24"))
        assert not router.originates(P("10.0.1.0/24"))

    def test_rollback_never_withdraws_owned(self, world):
        engine, router, controller = world
        config = ArtemisConfig([OwnedPrefix("10.0.0.0/24", {64500})])
        service = MitigationService(config, controller)
        router.originate(P("10.0.0.0/24"))
        alert = make_alert(owned="10.0.0.0/24", announced="10.0.0.0/24")
        action = service.execute(alert)  # compete: re-announce the /24
        engine.run()
        ops = service.rollback(action)
        engine.run()
        assert ops == []  # nothing withdrawn
        assert router.originates(P("10.0.0.0/24"))
