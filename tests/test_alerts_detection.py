"""Tests for alert lifecycle and the detection service (pure event level)."""

import pytest

from repro.core.alerts import AlertManager, AlertStatus, AlertType, HijackAlert
from repro.core.config import ArtemisConfig, OwnedPrefix
from repro.core.detection import DetectionService
from repro.errors import ReproError
from repro.feeds.events import FeedEvent
from repro.net.prefix import Prefix


def P(text):
    return Prefix.parse(text)


def event(prefix="10.0.0.0/23", path=(3, 2, 666), source="ris", t=10.0, kind="A",
          vantage=3):
    return FeedEvent(
        source=source,
        collector=f"{source}-c0",
        vantage_asn=vantage,
        kind=kind,
        prefix=P(prefix),
        as_path=tuple(path),
        observed_at=t - 1.0,
        delivered_at=t,
    )


def make_config(**kw):
    defaults = dict(
        owned=[OwnedPrefix("10.0.0.0/23", {64500}, **kw.pop("owned_kw", {}))],
    )
    defaults.update(kw)
    return ArtemisConfig(**defaults)


class TestAlertManager:
    def test_new_incident(self):
        manager = AlertManager()
        alert, is_new = manager.ingest(
            AlertType.EXACT_ORIGIN, P("10.0.0.0/23"), P("10.0.0.0/23"), 666, event()
        )
        assert is_new
        assert alert.detected_at == 10.0
        assert alert.status is AlertStatus.ACTIVE

    def test_duplicate_accumulates_evidence(self):
        manager = AlertManager()
        first, _ = manager.ingest(
            AlertType.EXACT_ORIGIN, P("10.0.0.0/23"), P("10.0.0.0/23"), 666, event(t=10)
        )
        second, is_new = manager.ingest(
            AlertType.EXACT_ORIGIN, P("10.0.0.0/23"), P("10.0.0.0/23"), 666,
            event(t=20, source="bgpmon", vantage=4),
        )
        assert not is_new
        assert second is first
        assert len(first.evidence) == 2
        assert first.witness_vantages == [3, 4]
        assert first.detected_at == 10.0  # unchanged by later evidence

    def test_different_offender_is_new_incident(self):
        manager = AlertManager()
        manager.ingest(AlertType.EXACT_ORIGIN, P("10.0.0.0/23"), P("10.0.0.0/23"), 666, event())
        _alert, is_new = manager.ingest(
            AlertType.EXACT_ORIGIN, P("10.0.0.0/23"), P("10.0.0.0/23"), 777, event()
        )
        assert is_new
        assert len(manager) == 2

    def test_resolve(self):
        manager = AlertManager()
        alert, _ = manager.ingest(
            AlertType.EXACT_ORIGIN, P("10.0.0.0/23"), P("10.0.0.0/23"), 666, event()
        )
        alert.resolve(100.0)
        assert alert.status is AlertStatus.RESOLVED
        assert alert.resolved_at == 100.0
        assert manager.active == []
        with pytest.raises(ReproError):
            alert.resolve(200.0)

    def test_refire_after_cooldown(self):
        manager = AlertManager(cooldown=50.0)
        alert, _ = manager.ingest(
            AlertType.EXACT_ORIGIN, P("10.0.0.0/23"), P("10.0.0.0/23"), 666, event(t=10)
        )
        alert.resolve(20.0)
        # Within cooldown: evidence attaches to the resolved alert.
        same, is_new = manager.ingest(
            AlertType.EXACT_ORIGIN, P("10.0.0.0/23"), P("10.0.0.0/23"), 666, event(t=60)
        )
        assert not is_new and same is alert
        # Past cooldown: a new incident.
        fresh, is_new = manager.ingest(
            AlertType.EXACT_ORIGIN, P("10.0.0.0/23"), P("10.0.0.0/23"), 666, event(t=200)
        )
        assert is_new and fresh is not alert

    def test_first_source(self):
        alert = HijackAlert(
            AlertType.EXACT_ORIGIN, P("10.0.0.0/23"), P("10.0.0.0/23"), 666,
            event(source="periscope"),
        )
        assert alert.first_source == "periscope"


class TestClassification:
    def test_exact_origin_hijack(self):
        service = DetectionService(make_config())
        verdict = service.classify(event(path=(3, 2, 666)))
        assert verdict == (AlertType.EXACT_ORIGIN, P("10.0.0.0/23"), 666)

    def test_legit_exact_announcement_ignored(self):
        service = DetectionService(make_config())
        assert service.classify(event(path=(3, 2, 64500))) is None

    def test_subprefix_hijack(self):
        service = DetectionService(make_config())
        verdict = service.classify(event(prefix="10.0.0.0/24", path=(3, 666)))
        assert verdict == (AlertType.SUB_PREFIX, P("10.0.0.0/23"), 666)

    def test_own_mitigation_subprefix_ignored(self):
        # De-aggregated /24s announced by the legit origin must not alert.
        service = DetectionService(make_config())
        assert service.classify(event(prefix="10.0.0.0/24", path=(3, 64500))) is None

    def test_subprefix_detection_can_be_disabled(self):
        service = DetectionService(make_config(detect_subprefix=False))
        assert service.classify(event(prefix="10.0.0.0/24", path=(3, 666))) is None

    def test_unrelated_prefix_ignored(self):
        service = DetectionService(make_config())
        assert service.classify(event(prefix="99.0.0.0/16", path=(3, 666))) is None

    def test_path_hijack_detected_with_upstreams(self):
        config = make_config(owned_kw={"legit_upstreams": {10, 11}})
        service = DetectionService(config)
        verdict = service.classify(event(path=(3, 666, 64500)))
        assert verdict == (AlertType.PATH, P("10.0.0.0/23"), 666)

    def test_path_check_passes_legit_upstream(self):
        config = make_config(owned_kw={"legit_upstreams": {10, 11}})
        service = DetectionService(config)
        assert service.classify(event(path=(3, 10, 64500))) is None

    def test_path_check_disabled_flag(self):
        config = make_config(
            owned_kw={"legit_upstreams": {10}}, detect_path=False
        )
        service = DetectionService(config)
        assert service.classify(event(path=(3, 666, 64500))) is None

    def test_path_check_skipped_without_upstream_config(self):
        service = DetectionService(make_config())
        assert service.classify(event(path=(3, 666, 64500))) is None

    def test_single_hop_forged_announcement_flags_vantage(self):
        # Regression for the len-1 bypass: a path of length 1 means the
        # reporting vantage claims direct adjacency to the origin, so the
        # vantage itself is the first hop.  Vantage 3 is not a configured
        # upstream → PATH alert with the vantage as offender.
        config = make_config(owned_kw={"legit_upstreams": {10}})
        service = DetectionService(config)
        verdict = service.classify(event(path=(64500,)))
        assert verdict == (AlertType.PATH, P("10.0.0.0/23"), 3)

    def test_single_hop_from_legit_upstream_passes(self):
        config = make_config(owned_kw={"legit_upstreams": {3, 10}})
        service = DetectionService(config)
        assert service.classify(event(path=(64500,))) is None

    def test_single_hop_from_origin_itself_passes(self):
        # The origin's own session to the collector: vantage == origin.
        config = make_config(owned_kw={"legit_upstreams": {10}})
        service = DetectionService(config)
        assert service.classify(event(vantage=64500, path=(64500,))) is None

    def test_single_hop_without_upstream_config_passes(self):
        # No legit_upstreams configured → path checking stays off.
        service = DetectionService(make_config())
        assert service.classify(event(path=(64500,))) is None


class TestHandleEvent:
    def test_alert_callback_fires_once_per_incident(self):
        service = DetectionService(make_config())
        alerts = []
        service.on_alert(alerts.append)
        service.handle_event(event(t=10))
        service.handle_event(event(t=20, vantage=5))
        assert len(alerts) == 1
        assert len(alerts[0].evidence) == 2

    def test_withdrawals_ignored(self):
        service = DetectionService(make_config())
        service.handle_event(event(kind="W", path=()))
        assert len(service.alert_manager) == 0

    def test_per_source_first_evidence(self):
        service = DetectionService(make_config())
        service.handle_event(event(t=10, source="ris"))
        service.handle_event(event(t=12, source="ris"))
        service.handle_event(event(t=30, source="bgpmon"))
        alert = service.alert_manager.alerts[0]
        delays = service.per_source_delay(alert, reference_time=5.0)
        assert delays == {"ris": 5.0, "bgpmon": 25.0}

    def test_events_checked_counter(self):
        service = DetectionService(make_config())
        service.handle_event(event(path=(3, 64500)))
        service.handle_event(event(path=(3, 666)))
        assert service.events_checked == 2


class TestIncidentLifecycleRegressions:
    def test_refire_after_cooldown_gets_fresh_evidence_times(self):
        # Regression: first_evidence used to be keyed by the alert's dedup
        # key, so a re-fired incident inherited the *old* incident's
        # per-source times and its delays came out wrong (even negative).
        config = make_config(alert_cooldown=5.0)
        service = DetectionService(config)
        service.handle_event(event(t=10, source="ris"))
        first = service.alert_manager.alerts[0]
        first.resolve(20.0)
        # Past cooldown: same pattern fires again as a new incident.
        service.handle_event(event(t=100, source="ris"))
        assert len(service.alert_manager) == 2
        fresh = service.alert_manager.alerts[1]
        assert fresh is not first
        assert service.per_source_delay(fresh, reference_time=90.0) == {"ris": 10.0}
        # The original incident's record is untouched.
        assert service.per_source_delay(first, reference_time=5.0) == {"ris": 5.0}

    def test_alert_ids_deterministic_across_runs(self):
        # Regression: IDs came from a process-global counter, so a second
        # identically-seeded run in the same process saw different IDs.
        def run():
            service = DetectionService(make_config())
            service.handle_event(event(t=10, path=(3, 2, 666)))
            service.handle_event(event(t=11, path=(3, 2, 777)))
            service.handle_event(
                event(t=12, prefix="10.0.0.0/24", path=(3, 666))
            )
            return [a.id for a in service.alert_manager.alerts]

        first, second = run(), run()
        assert first == second == [1, 2, 3]

    def test_directly_constructed_alerts_still_get_ids(self):
        a = HijackAlert(
            AlertType.EXACT_ORIGIN, P("10.0.0.0/23"), P("10.0.0.0/23"), 666, event()
        )
        b = HijackAlert(
            AlertType.EXACT_ORIGIN, P("10.0.0.0/23"), P("10.0.0.0/23"), 777, event()
        )
        assert b.id == a.id + 1
