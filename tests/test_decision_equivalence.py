"""Property-style equivalence: incremental decisions == full ``select_best``.

The speaker's hot path dispatches most routing changes through incremental
shortcuts (new-best compare, withdrawn-best rescan, displaced-replacement
rescan) instead of rescanning every candidate per UPDATE.  The shortcuts
are only sound because preference keys are unique per candidate set — so
this test hammers a small randomly-wired world with every mutation the
simulation performs (announce, implicit replace, withdraw, local
origination, forged origination, session teardown and re-establishment)
and re-derives every speaker's Loc-RIB from scratch with the reference
:func:`~repro.bgp.decision.select_best` after each convergence.

Any divergence between the incremental result and the full rescan — a
stale best, a missed promotion, a wrong tie-break — fails here with the
exact speaker and prefix.
"""

import random

from repro.bgp.decision import select_best
from repro.bgp.policy import Relationship
from repro.bgp.session import ActivityTracker, Session
from repro.bgp.speaker import BGPSpeaker
from repro.net.prefix import Prefix
from repro.sim.engine import Engine
from repro.sim.latency import Constant
from repro.sim.rng import SeededRNG


def _build_world(rng):
    engine = Engine()
    tracker = ActivityTracker()
    speakers = {}
    for asn in range(1, 7):
        speakers[asn] = BGPSpeaker(
            asn,
            engine,
            rng=SeededRNG(asn),
            tracker=tracker,
            processing_delay=Constant(0.01),
            mrai=Constant(rng.choice([0.0, 0.5])),
        )
    links = {}
    pairs = [(a, b) for a in speakers for b in speakers if a < b]
    for a, b in rng.sample(pairs, k=9):
        relationship = rng.choice(
            [Relationship.CUSTOMER, Relationship.PEER, Relationship.PROVIDER]
        )
        session = Session(
            engine,
            speakers[a],
            speakers[b],
            delay=Constant(0.01),
            rng=SeededRNG(a * 1000 + b),
            tracker=tracker,
        )
        speakers[a].add_peer(session, relationship)
        speakers[b].add_peer(session, relationship.inverse())
        links[(a, b)] = relationship
    return engine, tracker, speakers, links


def _converge(engine, tracker, max_time=3600.0):
    while tracker.busy:
        assert engine.peek_time() is not None, "activity pending but queue empty"
        assert engine.now < max_time, "did not converge"
        engine.step()


def _assert_loc_rib_matches_full_rescan(speakers):
    for asn, speaker in speakers.items():
        prefixes = {p.ikey: p for p in speaker.adj_rib_in.prefixes()}
        for prefix in speaker.originated_prefixes:
            prefixes[prefix.ikey] = prefix
        # Every known prefix: incremental best == reference full scan.
        for prefix in prefixes.values():
            expected = select_best(speaker._candidates(prefix))
            installed = speaker.loc_rib.get(prefix)
            assert installed is expected, (
                f"AS{asn} {prefix}: loc_rib has {installed!r}, "
                f"full rescan selects {expected!r}"
            )
        # And nothing else is installed.
        for route in speaker.loc_rib.routes():
            assert route.prefix.ikey in prefixes


def test_incremental_decisions_match_select_best():
    rng = random.Random(1234)
    prefixes = [Prefix.parse(f"10.0.{i}.0/24") for i in range(4)]
    for world_seed in range(5):
        world_rng = random.Random(world_seed)
        engine, tracker, speakers, links = _build_world(world_rng)
        torn_down = []
        for _step in range(40):
            op = rng.random()
            asn = rng.randint(1, 6)
            speaker = speakers[asn]
            prefix = rng.choice(prefixes)
            if op < 0.45:
                if not speaker.originates(prefix):
                    speaker.originate(prefix)
            elif op < 0.65:
                if speaker.originates(prefix):
                    speaker.withdraw_origin(prefix)
                else:
                    speaker.originate(prefix)
            elif op < 0.75:
                if not speaker.originates(prefix):
                    suffix = tuple(
                        rng.sample(sorted(set(range(1, 7)) - {asn}), k=1)
                    )
                    speaker.originate_forged(prefix, suffix)
            elif op < 0.85 and links:
                # Tear a random session down (teardown withdraws on both
                # sides and re-runs the withdraw-aware decision).
                a, b = rng.choice(sorted(links))
                relationship = links.pop((a, b))
                speakers[a].remove_peer(speakers[b].asn)
                speakers[b].remove_peer(speakers[a].asn)
                torn_down.append((a, b, relationship))
            elif torn_down:
                # Re-establish a torn-down session; the new peer receives
                # the current table per the initial-exchange path.
                a, b, relationship = torn_down.pop(
                    rng.randrange(len(torn_down))
                )
                session = Session(
                    engine,
                    speakers[a],
                    speakers[b],
                    delay=Constant(0.01),
                    rng=SeededRNG(a * 1000 + b + 7),
                    tracker=tracker,
                )
                speakers[a].add_peer(session, relationship)
                speakers[b].add_peer(session, relationship.inverse())
                links[(a, b)] = relationship
            _converge(engine, tracker)
            _assert_loc_rib_matches_full_rescan(speakers)
