"""Tests for ARTEMIS configuration."""

import pytest

from repro.core.config import ArtemisConfig, OwnedPrefix
from repro.errors import ConfigError
from repro.net.prefix import Prefix


def P(text):
    return Prefix.parse(text)


class TestOwnedPrefix:
    def test_basic(self):
        owned = OwnedPrefix("10.0.0.0/23", {64500})
        assert owned.prefix == P("10.0.0.0/23")
        assert owned.origin_is_legit(64500)
        assert not owned.origin_is_legit(64501)
        assert not owned.origin_is_legit(None)

    def test_needs_origin(self):
        with pytest.raises(ConfigError):
            OwnedPrefix("10.0.0.0/23", set())

    def test_multi_origin(self):
        owned = OwnedPrefix("10.0.0.0/23", {1, 2})
        assert owned.origin_is_legit(1) and owned.origin_is_legit(2)

    def test_upstreams_default_permissive(self):
        owned = OwnedPrefix("10.0.0.0/23", {1})
        assert owned.upstream_is_legit(999)

    def test_upstreams_enforced_when_set(self):
        owned = OwnedPrefix("10.0.0.0/23", {1}, legit_upstreams={10, 11})
        assert owned.upstream_is_legit(10)
        assert not owned.upstream_is_legit(12)

    def test_dict_roundtrip(self):
        owned = OwnedPrefix("10.0.0.0/23", {1, 2}, legit_upstreams={3}, description="main")
        data = owned.to_dict()
        back = OwnedPrefix.from_dict(data)
        assert back.prefix == owned.prefix
        assert back.legit_origins == owned.legit_origins
        assert back.legit_upstreams == owned.legit_upstreams
        assert back.description == "main"

    def test_from_dict_missing_key(self):
        with pytest.raises(ConfigError):
            OwnedPrefix.from_dict({"prefix": "10.0.0.0/23"})


class TestArtemisConfig:
    def make(self, **kw):
        return ArtemisConfig([OwnedPrefix("10.0.0.0/23", {64500})], **kw)

    def test_needs_owned(self):
        with pytest.raises(ConfigError):
            ArtemisConfig([])

    def test_duplicate_owned_rejected(self):
        with pytest.raises(ConfigError):
            ArtemisConfig(
                [
                    OwnedPrefix("10.0.0.0/23", {1}),
                    OwnedPrefix("10.0.0.0/23", {2}),
                ]
            )

    def test_entry_for_exact_only(self):
        config = self.make()
        assert config.entry_for(P("10.0.0.0/23")) is not None
        assert config.entry_for(P("10.0.0.0/24")) is None

    def test_covering_entry(self):
        config = self.make()
        assert config.covering_entry(P("10.0.0.0/24")).prefix == P("10.0.0.0/23")
        assert config.covering_entry(P("11.0.0.0/24")) is None

    def test_covering_entry_most_specific_wins(self):
        config = ArtemisConfig(
            [
                OwnedPrefix("10.0.0.0/16", {1}),
                OwnedPrefix("10.0.0.0/23", {2}),
            ]
        )
        assert config.covering_entry(P("10.0.0.0/24")).prefix == P("10.0.0.0/23")
        assert config.covering_entry(P("10.0.9.0/24")).prefix == P("10.0.0.0/16")

    def test_max_announce_length(self):
        config = self.make()
        assert config.max_announce_length(4) == 24
        assert config.max_announce_length(6) == 48

    def test_validation(self):
        with pytest.raises(ConfigError):
            self.make(deaggregation_levels=0)
        with pytest.raises(ConfigError):
            self.make(alert_cooldown=-1.0)

    def test_dict_roundtrip(self):
        config = self.make(auto_mitigate=False, deaggregation_levels=2)
        back = ArtemisConfig.from_dict(config.to_dict())
        assert back.auto_mitigate is False
        assert back.deaggregation_levels == 2
        assert back.owned_prefixes == config.owned_prefixes

    def test_from_dict_missing_owned(self):
        with pytest.raises(ConfigError):
            ArtemisConfig.from_dict({})
