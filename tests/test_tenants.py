"""The multi-tenant detection plane (repro.tenants).

Contracts under test (see DESIGN.md "Detection plane"):

* the registry compiles ArtemisConfig ground truth into interned rows and
  round-trips through its plain-tuple worker spec;
* the shared prefix tree resolves one covering walk into per-tenant
  matches — most specific rule per tenant, deterministic tenant order,
  incremental add/remove with epoch bumps;
* the batched pipeline produces byte-identical incidents to the naive
  per-tenant DetectionService fan-out, for any batch size, with the
  memo/backpressure/notifier/autoignore counters visible in repro.perf;
* incidents are keyed per tenant: cooldown, resurrection, and the
  duplicate-delivery founding gate apply independently per tenant even
  when the same (prefix, origin) pattern fires under two tenants;
* resolved-incident bookkeeping is pruned after cooldown + retention in
  both the plane and the single-tenant DetectionService (bounded soaks);
* the --detect-workers partitioning merges to a digest bit-identical to
  the single-process plane, and a stale/reordered batch epoch is a loud
  protocol error, never a silent wrong answer.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.alerts import AlertStatus, AlertType
from repro.core.config import ArtemisConfig, OwnedPrefix
from repro.core.detection import DetectionService
from repro.feeds.events import FeedEvent
from repro.feeds.replay import TraceError, TraceWriter
from repro.net.prefix import Prefix
from repro.perf import COUNTERS
from repro.tenants import (
    DetectionPlane,
    ParallelDetectionPlane,
    PrefixTree,
    TenantRegistry,
    incident_rows,
    merged_alert_digest,
)
from repro.tenants import frames
from repro.tenants.pipeline import classify_batch_verdicts
from repro.tenants.synth import (
    baseline_services,
    build_synth_registry,
    observed_origin_map,
    pad_prefix,
)
from repro.tenants.workers import (
    assign_roots,
    iter_trace_lines,
    partition_roots,
    tenant_worker_main,
)


def make_event(
    delivered,
    prefix,
    path,
    source="ris",
    collector="rrc00",
    vantage=100,
    kind="A",
    observed=None,
):
    return FeedEvent(
        source=source,
        collector=collector,
        vantage_asn=vantage,
        kind=kind,
        prefix=Prefix.parse(prefix),
        as_path=path,
        observed_at=delivered - 0.5 if observed is None else observed,
        delivered_at=delivered,
    )


def two_tenant_registry(cooldown_a=5.0, cooldown_b=20.0):
    """acme owns 10.0.0.0/23 (with upstreams), beta owns 10.0.0.0/24."""
    registry = TenantRegistry()
    registry.add_tenant(
        "acme",
        ArtemisConfig(
            [OwnedPrefix("10.0.0.0/23", [65001], [64600])],
            alert_cooldown=cooldown_a,
        ),
    )
    registry.add_tenant(
        "beta",
        ArtemisConfig(
            [OwnedPrefix("10.0.0.0/24", [65002])], alert_cooldown=cooldown_b
        ),
    )
    return registry


# ---------------------------------------------------------------- registry


class TestTenantRegistry:
    def test_compiles_and_interns_rows(self):
        registry = TenantRegistry()
        config = ArtemisConfig(
            [
                OwnedPrefix("10.0.0.0/24", [65001]),
                OwnedPrefix("10.0.1.0/24", [65001]),
            ]
        )
        rows = registry.add_tenant("acme", config)
        assert len(rows) == 2
        # Identical origin sets are interned to the same object.
        assert rows[0].legit_origins is rows[1].legit_origins
        assert registry.num_rules == 2
        assert "acme" in registry and len(registry) == 1

    def test_identical_policy_rows_shared_across_tenants(self):
        registry = TenantRegistry()
        for name in ("a", "b"):
            registry.add_tenant(
                name, ArtemisConfig([OwnedPrefix("10.0.0.0/24", [65001])])
            )
        rule_a = registry.rules_for("a")[0]
        rule_b = registry.rules_for("b")[0]
        assert rule_a.legit_origins is rule_b.legit_origins

    def test_duplicate_tenant_rejected(self):
        registry = TenantRegistry()
        registry.add_tenant("acme", ArtemisConfig([OwnedPrefix("10.0.0.0/24", [1])]))
        with pytest.raises(Exception, match="already registered"):
            registry.add_tenant(
                "acme", ArtemisConfig([OwnedPrefix("10.1.0.0/24", [2])])
            )

    def test_remove_unknown_tenant_rejected(self):
        with pytest.raises(Exception, match="no tenant"):
            TenantRegistry().remove_tenant("ghost")

    def test_spec_roundtrip(self):
        registry = two_tenant_registry()
        rebuilt = TenantRegistry.from_spec(registry.to_spec())
        assert rebuilt.to_spec() == registry.to_spec()
        assert rebuilt.tenant_names() == registry.tenant_names()
        assert rebuilt.cooldown_for("acme") == 5.0
        assert rebuilt.rules_for("acme")[0].legit_upstreams == frozenset([64600])

    def test_monitored_prefixes_distinct_and_sorted(self):
        registry = two_tenant_registry()
        registry.add_tenant(
            "gamma", ArtemisConfig([OwnedPrefix("10.0.0.0/24", [65009])])
        )
        monitored = registry.monitored_prefixes()
        assert monitored == sorted(set(monitored), key=lambda p: p.sort_key)
        assert len(monitored) == 2  # /23 and /24, the duplicate collapsed


# ------------------------------------------------------------- prefix tree


class TestPrefixTree:
    def test_resolve_exact_and_covering(self):
        tree = PrefixTree(two_tenant_registry())
        matches = tree.resolve(Prefix.parse("10.0.0.0/24"))
        assert [(r.tenant, exact) for r, exact in matches] == [
            ("acme", False),
            ("beta", True),
        ]

    def test_resolve_most_specific_rule_per_tenant(self):
        registry = TenantRegistry()
        registry.add_tenant(
            "acme",
            ArtemisConfig(
                [
                    OwnedPrefix("10.0.0.0/16", [65001]),
                    OwnedPrefix("10.0.0.0/24", [65002]),
                ]
            ),
        )
        tree = PrefixTree(registry)
        matches = tree.resolve(Prefix.parse("10.0.0.128/25"))
        assert len(matches) == 1
        rule, exact = matches[0]
        assert str(rule.prefix) == "10.0.0.0/24" and not exact
        assert rule.legit_origins == frozenset([65002])

    def test_resolve_misses_outside_monitored_space(self):
        tree = PrefixTree(two_tenant_registry())
        assert tree.resolve(Prefix.parse("192.168.0.0/24")) == []
        # A covering (less specific) announcement matches nothing either —
        # sub-prefix detection is strictly more-specific, as in the engine.
        assert tree.resolve(Prefix.parse("10.0.0.0/16")) == []

    def test_incremental_add_remove_with_epochs(self):
        registry = two_tenant_registry()
        tree = PrefixTree(registry)
        epoch = tree.epoch
        registry.add_tenant(
            "gamma", ArtemisConfig([OwnedPrefix("10.0.0.0/24", [65009])])
        )
        assert tree.epoch == epoch + 1
        assert tree.tenants_at(Prefix.parse("10.0.0.0/24")) == ["beta", "gamma"]
        registry.remove_tenant("beta")
        assert tree.epoch == epoch + 2
        assert tree.tenants_at(Prefix.parse("10.0.0.0/24")) == ["gamma"]
        matches = tree.resolve(Prefix.parse("10.0.0.0/24"))
        assert {r.tenant for r, _ in matches} == {"acme", "gamma"}

    def test_remove_unknown_rule_is_loud(self):
        registry = two_tenant_registry()
        tree = PrefixTree(registry)
        rule = registry.rules_for("acme")[0]
        tree.remove_rules([rule])
        with pytest.raises(KeyError):
            tree.remove_rules([rule])

    def test_resolve_batch_dedups(self):
        tree = PrefixTree(two_tenant_registry())
        COUNTERS.reset()
        prefix = Prefix.parse("10.0.0.0/24")
        out = tree.resolve_batch([prefix, prefix, prefix])
        assert COUNTERS.pipeline_trie_walks == 1
        assert len(out[prefix]) == 2


# ------------------------------------------------------------ batch verdicts


class TestClassifyBatchVerdicts:
    def test_mirrors_engine_classification(self):
        registry = two_tenant_registry()
        tree = PrefixTree(registry)
        prefix = Prefix.parse("10.0.0.0/24")
        matches = tree.resolve(prefix)
        verdicts = classify_batch_verdicts(matches, prefix, (3, 7, 666), 3)
        assert [(r.tenant, t) for r, t, _ in verdicts] == [
            ("acme", AlertType.SUB_PREFIX),
            ("beta", AlertType.EXACT_ORIGIN),
        ]
        # Legit origin for beta, sub-prefix for acme; acme's path rule does
        # not apply to the covering match with a foreign origin.
        verdicts = classify_batch_verdicts(matches, prefix, (3, 7, 65002), 3)
        assert [(r.tenant, t, o) for r, t, o in verdicts] == [
            ("acme", AlertType.SUB_PREFIX, 65002)
        ]

    def test_path_check_on_exact_match(self):
        registry = two_tenant_registry()
        tree = PrefixTree(registry)
        prefix = Prefix.parse("10.0.0.0/23")
        matches = tree.resolve(prefix)
        verdicts = classify_batch_verdicts(matches, prefix, (3, 9, 65001), 3)
        assert [(r.tenant, t, o) for r, t, o in verdicts] == [
            ("acme", AlertType.PATH, 9)
        ]
        assert (
            classify_batch_verdicts(matches, prefix, (3, 64600, 65001), 3) == ()
        )


# ----------------------------------------------------------------- pipeline


def churny_events():
    """A deterministic stream with benign churn, hijacks, and duplicates."""
    events = []
    t = 0.0
    for round_number in range(30):
        for i, vantage in enumerate((100, 101, 102)):
            t += 0.1
            origin = 65001 if round_number % 5 else 666
            events.append(
                make_event(
                    t, "10.0.0.0/23", (64600, origin), vantage=vantage,
                    source="ris" if i % 2 else "bgpmon",
                )
            )
        if round_number % 7 == 3:
            t += 0.1
            events.append(
                make_event(t, "10.0.0.64/26", (5, 777), vantage=103)
            )
        if round_number == 10:
            events.append(events[-1])  # byte-identical duplicate delivery
    return events


class TestDetectionPlane:
    def test_matches_per_tenant_service_baseline(self):
        registry = two_tenant_registry()
        plane = DetectionPlane(registry, batch_size=16)
        events = churny_events()
        for event in events:
            plane.ingest(event)
        plane.flush()

        services = baseline_services(registry)
        for event in events:
            for service in services.values():
                service.handle_event(event)
        baseline_rows = incident_rows(
            {name: s.alert_manager for name, s in services.items()}
        )
        assert plane.incident_rows() == baseline_rows
        assert plane.digest() == merged_alert_digest(baseline_rows)
        assert plane.total_alerts() > 0

    @pytest.mark.parametrize("batch_size", [1, 7, 64, 10_000])
    def test_digest_invariant_under_batch_size(self, batch_size):
        registry = two_tenant_registry()
        reference = DetectionPlane(registry, batch_size=16)
        plane = DetectionPlane(registry, batch_size=batch_size)
        for event in churny_events():
            reference.ingest(event)
            plane.ingest(event)
        reference.flush()
        plane.flush()
        assert plane.digest() == reference.digest()

    def test_memo_amortizes_trie_walks(self):
        COUNTERS.reset()
        plane = DetectionPlane(two_tenant_registry(), batch_size=64)
        prefix = "10.0.0.0/23"
        for i in range(64):
            plane.ingest(make_event(float(i), prefix, (64600, 666), vantage=i))
        plane.flush()
        # One walk for the unique prefix; every other event is a memo hit.
        assert COUNTERS.pipeline_trie_walks == 1
        assert COUNTERS.pipeline_memo_hits == 63
        assert COUNTERS.pipeline_batches == 1
        assert COUNTERS.pipeline_events_ingested == 64

    def test_verdict_cache_survives_across_batches(self):
        COUNTERS.reset()
        plane = DetectionPlane(two_tenant_registry(), batch_size=8)
        for i in range(32):
            plane.ingest(
                make_event(float(i), "10.0.0.0/23", (64600, 666), vantage=i)
            )
        plane.flush()
        assert COUNTERS.pipeline_batches == 4
        # One walk and one ladder run EVER; later batches hit the
        # cross-batch cache, not just the per-batch memo.
        assert COUNTERS.pipeline_trie_walks == 1
        assert COUNTERS.verdict_cache_hits == 31
        assert COUNTERS.pipeline_memo_hits == 31
        assert COUNTERS.verdict_cache_evictions == 0

    def test_verdict_cache_bounded_fifo_eviction(self):
        COUNTERS.reset()
        plane = DetectionPlane(
            two_tenant_registry(), batch_size=4, verdict_cache_size=2
        )
        # Four distinct keys through a 2-entry cache: evictions must fire
        # and the plane must still answer correctly.
        for i in range(4):
            plane.ingest(
                make_event(float(i), "10.0.0.0/23", (64600, 700 + i))
            )
        plane.flush()
        assert COUNTERS.verdict_cache_evictions == 2
        assert plane.total_alerts() > 0

    def test_verdict_cache_invalidated_on_rule_change(self):
        COUNTERS.reset()
        registry = two_tenant_registry()
        plane = DetectionPlane(registry, batch_size=4)
        event = make_event(1.0, "10.0.0.0/23", (64600, 666))
        for i in range(4):
            plane.ingest(event)
        hits_before = COUNTERS.verdict_cache_hits
        assert hits_before == 3
        # A tenant change bumps the tree epoch: every cached verdict dies.
        registry.add_tenant(
            "late", ArtemisConfig([OwnedPrefix("10.9.0.0/16", [65009])])
        )
        assert plane.tree.epoch == plane._cache_epoch + 1
        for i in range(4):
            plane.ingest(event)
        # The first post-change event recomputes (a fresh walk), the rest
        # re-hit the rebuilt cache.
        assert COUNTERS.pipeline_trie_walks == 2
        assert COUNTERS.verdict_cache_hits == hits_before + 3

    def test_verdict_cache_per_batch_with_corroborator(self):
        COUNTERS.reset()
        probes = []

        def probe(prefix):
            probes.append(prefix)
            return True

        plane = DetectionPlane(
            two_tenant_registry(), batch_size=4, corroborator=probe
        )
        event = make_event(1.0, "10.0.0.0/23", (64600, 666))
        for _ in range(8):
            plane.ingest(event)
        plane.flush()
        # Two batches: the probe must be consulted once per batch (its
        # answer is time-dependent), so the cache cannot span batches.
        assert len(probes) == 2
        assert COUNTERS.pipeline_trie_walks == 2

    def test_backpressure_stall_counter(self):
        COUNTERS.reset()
        plane = DetectionPlane(
            two_tenant_registry(), batch_size=100, queue_capacity=8
        )
        for i in range(40):
            plane.ingest(make_event(float(i), "10.0.0.0/23", (64600, 65001)))
        assert COUNTERS.pipeline_backpressure_stalls == 5
        assert COUNTERS.pipeline_queue_depth_peak == 8

    def test_notifier_bounded_drop_oldest(self):
        COUNTERS.reset()
        registry = TenantRegistry()
        for i in range(6):
            registry.add_tenant(
                f"t{i}", ArtemisConfig([OwnedPrefix(f"10.{i}.0.0/16", [65001])])
            )
        plane = DetectionPlane(registry, batch_size=16, notifier_capacity=4)
        for i in range(6):
            plane.ingest(make_event(float(i), f"10.{i}.0.0/16", (1, 666)))
        plane.flush()
        pending = plane.drain_notifications()
        assert [tenant for tenant, _ in pending] == ["t2", "t3", "t4", "t5"]
        assert COUNTERS.notifier_alerts_dropped == 2
        assert COUNTERS.notifier_queue_depth_peak == 4
        assert COUNTERS.notifier_alerts_emitted == 4
        # Alert *state* was never dropped, only notification delivery.
        assert plane.total_alerts() == 6

    def test_notifier_callback_mode_emits_per_batch(self):
        COUNTERS.reset()
        delivered = []
        plane = DetectionPlane(
            two_tenant_registry(),
            batch_size=4,
            notify=lambda tenant, alert: delivered.append((tenant, alert.type)),
        )
        for i in range(4):
            plane.ingest(make_event(float(i), "10.0.0.0/24", (1, 666), vantage=i))
        assert ("acme", AlertType.SUB_PREFIX) in delivered
        assert ("beta", AlertType.EXACT_ORIGIN) in delivered
        assert COUNTERS.notifier_alerts_emitted == 2

    def test_autoignore_holds_until_visibility(self):
        COUNTERS.reset()
        registry = TenantRegistry()
        registry.add_tenant(
            "acme",
            ArtemisConfig([OwnedPrefix("10.0.0.0/24", [65001])]),
            autoignore_visibility=3,
        )
        plane = DetectionPlane(registry, batch_size=1)
        plane.ingest(make_event(1.0, "10.0.0.0/24", (1, 666), vantage=100))
        plane.ingest(make_event(2.0, "10.0.0.0/24", (1, 666), vantage=100))
        assert plane.drain_notifications() == []
        assert COUNTERS.autoignore_suppressed == 1
        plane.ingest(make_event(3.0, "10.0.0.0/24", (1, 666), vantage=101))
        assert plane.drain_notifications() == []
        plane.ingest(make_event(4.0, "10.0.0.0/24", (1, 666), vantage=102))
        released = plane.drain_notifications()
        assert [(t, a.type) for t, a in released] == [
            ("acme", AlertType.EXACT_ORIGIN)
        ]
        # The incident itself was on the books the whole time.
        assert plane.total_alerts() == 1

    def test_withdrawals_ignored(self):
        plane = DetectionPlane(two_tenant_registry(), batch_size=2)
        plane.ingest(make_event(1.0, "10.0.0.0/23", (), kind="W"))
        plane.ingest(make_event(2.0, "10.0.0.0/23", (), kind="W"))
        assert plane.total_alerts() == 0


# ----------------------------------------- per-tenant incident edges (c)


class TestPerTenantIncidents:
    def test_same_pattern_separate_incidents_per_tenant(self):
        registry = TenantRegistry()
        for name in ("acme", "beta"):
            registry.add_tenant(
                name, ArtemisConfig([OwnedPrefix("10.0.0.0/24", [65001])])
            )
        plane = DetectionPlane(registry, batch_size=1)
        plane.ingest(make_event(1.0, "10.0.0.0/24", (1, 666)))
        managers = plane.alert_managers()
        assert len(managers["acme"]) == 1 and len(managers["beta"]) == 1
        assert managers["acme"].alerts[0] is not managers["beta"].alerts[0]

    def test_cooldown_and_resurrection_independent_per_tenant(self):
        registry = two_tenant_registry(cooldown_a=5.0, cooldown_b=50.0)
        plane = DetectionPlane(registry, batch_size=1)
        # Hits both tenants: exact for beta, sub-prefix for acme.
        plane.ingest(make_event(1.0, "10.0.0.0/24", (1, 666)))
        acme = plane.alert_managers()["acme"].alerts[0]
        beta = plane.alert_managers()["beta"].alerts[0]
        acme.resolve(2.0)
        beta.resolve(2.0)
        # 10s later: past acme's 5s cooldown, inside beta's 50s cooldown.
        plane.ingest(make_event(12.0, "10.0.0.0/24", (1, 666), vantage=101))
        assert len(plane.alert_managers()["acme"]) == 2
        assert len(plane.alert_managers()["beta"]) == 1
        # Beta's resolved incident re-accepted it as evidence instead.
        assert len(beta.evidence) == 2
        fresh = plane.alert_managers()["acme"].alerts[1]
        assert fresh.detected_at == 12.0
        assert fresh.status is AlertStatus.ACTIVE

    def test_duplicate_delivery_never_resurrects_either_tenant(self):
        registry = two_tenant_registry(cooldown_a=5.0, cooldown_b=5.0)
        plane = DetectionPlane(registry, batch_size=1)
        original = make_event(1.0, "10.0.0.0/24", (1, 666))
        plane.ingest(original)
        for manager in plane.alert_managers().values():
            manager.alerts[0].resolve(2.0)
        # The byte-identical copy surfaces long past both cooldowns.
        plane.ingest(original)
        for manager in plane.alert_managers().values():
            assert len(manager) == 1
        # A genuinely new delivery (its own delivery time) does re-fire.
        plane.ingest(make_event(30.0, "10.0.0.0/24", (1, 666)))
        for manager in plane.alert_managers().values():
            assert len(manager) == 2


# --------------------------------------------------------- state bounding (a)


class TestStateBounding:
    def run_plane_incident(self, retention):
        registry = two_tenant_registry(cooldown_a=5.0, cooldown_b=5.0)
        plane = DetectionPlane(registry, batch_size=1)
        plane.state_retention = retention
        plane.ingest(make_event(1.0, "10.0.0.0/24", (1, 666)))
        return plane

    def test_plane_prunes_resolved_incidents(self):
        plane = self.run_plane_incident(retention=100.0)
        assert plane.detection_state_entries() == 4  # 2 tenants × 2 tables
        for manager in plane.alert_managers().values():
            manager.alerts[0].resolve(2.0)
        # Inside cooldown + retention: nothing prunes.
        assert plane.prune_state(now=50.0) == 0
        assert plane.detection_state_entries() == 4
        # Past resolve + cooldown + retention: everything prunes.
        assert plane.prune_state(now=200.0) == 4
        assert plane.detection_state_entries() == 0
        assert plane.entries_pruned == 4

    def test_plane_retention_none_disables_pruning(self):
        plane = self.run_plane_incident(retention=None)
        for manager in plane.alert_managers().values():
            manager.alerts[0].resolve(2.0)
        assert plane.prune_state(now=1e9) == 0
        assert plane.detection_state_entries() == 4

    def test_plane_active_incidents_never_pruned(self):
        plane = self.run_plane_incident(retention=100.0)
        assert plane.prune_state(now=1e9) == 0
        assert plane.detection_state_entries() == 4

    def test_gauge_tracks_peak_entries(self):
        COUNTERS.reset()
        plane = self.run_plane_incident(retention=100.0)
        plane.prune_state(now=2.0)
        assert COUNTERS.detection_state_entries == 4

    def test_detection_service_prunes_resolved_incidents(self):
        service = DetectionService(
            ArtemisConfig([OwnedPrefix("10.0.0.0/24", [65001])], alert_cooldown=5.0)
        )
        service.state_retention = 100.0
        service.handle_event(make_event(1.0, "10.0.0.0/24", (1, 666)))
        assert service.detection_state_entries() == 2
        alert = service.alert_manager.alerts[0]
        alert.resolve(2.0)
        assert service.prune_state(now=50.0) == 0
        # Late re-reads still work inside the retention window.
        assert service.per_source_delay(alert, 0.5) == {"ris": 0.5}
        assert service.prune_state(now=200.0) == 2
        assert service.detection_state_entries() == 0
        assert service.entries_pruned == 2

    def test_detection_service_prune_hook_fires_periodically(self):
        from repro.core.detection import PRUNE_CHECK_INTERVAL

        service = DetectionService(
            ArtemisConfig([OwnedPrefix("10.0.0.0/24", [65001])], alert_cooldown=0.0)
        )
        service.state_retention = 10.0
        service.handle_event(make_event(1.0, "10.0.0.0/24", (1, 666)))
        service.alert_manager.alerts[0].resolve(2.0)
        benign = make_event(10_000.0, "10.0.0.0/24", (1, 65001))
        for _ in range(PRUNE_CHECK_INTERVAL):
            service.handle_event(benign)
        assert service.detection_state_entries() == 0


# ------------------------------------------------------------------ workers


def write_mini_trace(path, rounds=40, tenants=8):
    """A small multi-prefix trace with periodic hijacks; returns the path."""
    writer = TraceWriter(str(path))
    t = 0.0
    for round_number in range(rounds):
        for i in range(tenants):
            t += 0.01
            origin = 65000 + i if round_number % 6 else 666
            writer.append(
                make_event(
                    t + 0.2,
                    f"10.{i}.0.0/16",
                    (1, origin),
                    vantage=100 + round_number % 4,
                    observed=t,
                )
            )
    writer.close()
    return str(path)


def worker_registry(tenants=8):
    registry = TenantRegistry()
    for i in range(tenants):
        registry.add_tenant(
            f"t{i:02d}",
            ArtemisConfig(
                [
                    OwnedPrefix(f"10.{i}.0.0/16", [65000 + i]),
                    OwnedPrefix(f"10.{i}.1.0/24", [65000 + i]),
                ],
                alert_cooldown=2.0,
            ),
        )
    return registry


class TestPartitioning:
    def test_partition_roots_keeps_only_maximal_prefixes(self):
        prefixes = [
            Prefix.parse("10.0.0.0/16"),
            Prefix.parse("10.0.1.0/24"),  # nested: not a root
            Prefix.parse("10.1.0.0/16"),
            Prefix.parse("192.168.0.0/24"),
        ]
        roots = partition_roots(prefixes)
        assert sorted(str(p) for p in roots) == [
            "10.0.0.0/16",
            "10.1.0.0/16",
            "192.168.0.0/24",
        ]

    def test_assign_roots_round_robin_deterministic(self):
        roots = [Prefix.parse(f"10.{i}.0.0/16") for i in range(5)]
        routing = assign_roots(roots, num_workers=2)
        owners = [routing.get(root) for root in roots]
        assert owners == [0, 1, 0, 1, 0]

    def test_iter_trace_lines_rejects_truncation(self, tmp_path):
        trace = write_mini_trace(tmp_path / "t.trace", rounds=2)
        lines = open(trace, encoding="utf-8").read().splitlines()
        clipped = tmp_path / "clipped.trace"
        clipped.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(TraceError, match="no footer"):
            list(iter_trace_lines(str(clipped)))


class TestParallelDetectionPlane:
    @pytest.mark.parametrize("num_workers", [1, 2, 3])
    def test_merged_digest_identical_to_single_process(
        self, tmp_path, num_workers
    ):
        trace = write_mini_trace(tmp_path / "mini.trace")
        registry = worker_registry()
        plane = DetectionPlane(registry, batch_size=32)
        from repro.feeds.dumpfile import parse_event

        for line in iter_trace_lines(trace):
            plane.ingest(parse_event(line))
        plane.flush()

        parallel = ParallelDetectionPlane(
            registry, num_workers=num_workers, batch_size=32
        )
        parallel.feed_trace(trace)
        result = parallel.finish()
        assert result["digest"] == plane.digest()
        assert result["rows"] == plane.incident_rows()
        assert result["alerts"] == plane.total_alerts()
        assert len(result["cpu_seconds"]) == num_workers
        assert result["events_unrouted"] == 0

    def test_unmonitored_prefixes_skipped_at_routing(self, tmp_path):
        trace = write_mini_trace(tmp_path / "mini.trace", rounds=4)
        registry = worker_registry(tenants=2)  # only 10.0/16 and 10.1/16
        parallel = ParallelDetectionPlane(registry, num_workers=2)
        parallel.feed_trace(trace)
        result = parallel.finish()
        assert result["events_unrouted"] > 0
        assert result["events_routed"] + result["events_unrouted"] == 4 * 8

    def test_perf_counters_merged_from_workers(self, tmp_path):
        COUNTERS.reset()
        trace = write_mini_trace(tmp_path / "mini.trace")
        parallel = ParallelDetectionPlane(worker_registry(), num_workers=2)
        parallel.feed_trace(trace)
        parallel.finish()
        assert COUNTERS.detect_events_routed == 40 * 8
        assert COUNTERS.detect_worker_batches >= 2
        assert COUNTERS.pipeline_events_ingested == 40 * 8
        assert COUNTERS.pipeline_batches >= 2

    def test_epoch_violation_is_loud(self, tmp_path):
        import multiprocessing

        trace = write_mini_trace(tmp_path / "mini.trace", rounds=2)
        lines = [line.encode("utf-8") for line in iter_trace_lines(trace)]
        registry = worker_registry()
        parent_conn, child_conn = multiprocessing.Pipe()
        thread = threading.Thread(
            target=tenant_worker_main,
            args=(0, 32, child_conn),
            daemon=True,
        )
        thread.start()
        parent_conn.send_bytes(
            frames.encode_payload(frames.FRAME_SPEC, 0, registry.to_spec())
        )
        # Epoch 2 first: a reordered/stale shipment must be rejected.
        parent_conn.send_bytes(frames.encode_batch(2, lines))
        kind, _epoch, body = frames.decode_frame(parent_conn.recv_bytes())
        assert kind == frames.FRAME_ERROR
        assert "epoch" in frames.decode_error(body)
        thread.join(timeout=5.0)

    def test_batch_before_spec_is_loud(self):
        import multiprocessing

        parent_conn, child_conn = multiprocessing.Pipe()
        thread = threading.Thread(
            target=tenant_worker_main, args=(0, 32, child_conn), daemon=True
        )
        thread.start()
        parent_conn.send_bytes(frames.encode_batch(1, [b"A|s|c|1|x|1|0.0|0.0"]))
        kind, _epoch, body = frames.decode_frame(parent_conn.recv_bytes())
        assert kind == frames.FRAME_ERROR
        assert "before the registry spec" in frames.decode_error(body)
        thread.join(timeout=5.0)

    def test_malformed_lines_dropped_and_counted(self, tmp_path):
        COUNTERS.reset()
        trace = write_mini_trace(tmp_path / "mini.trace", rounds=2)
        good = list(iter_trace_lines(trace))
        damaged = [
            good[0],
            "A|rv|col1|99",  # wrong field count: no prefix field at all
            "A|rv|col1|99|not-a-prefix|99 100|1.0|1.0",  # unparsable prefix
            good[1],
            "",  # empty line
            "A|rv|col1|99|not-a-prefix|99 100|2.0|2.0",  # repeat: memo path
        ]
        parallel = ParallelDetectionPlane(worker_registry(), num_workers=2)
        parallel.feed_lines(damaged)
        parallel.feed_lines(good[2:])
        result = parallel.finish()
        assert result["events_malformed"] == 4
        assert COUNTERS.events_malformed == 4
        # The well-formed lines still route and detect normally.
        assert result["events_routed"] + result["events_unrouted"] == len(good)

    def test_spec_frame_interned_once_then_raw_batches(self, tmp_path):
        COUNTERS.reset()
        trace = write_mini_trace(tmp_path / "mini.trace")
        parallel = ParallelDetectionPlane(worker_registry(), num_workers=2)
        parallel.feed_trace(trace)
        result = parallel.finish()
        assert result["events_malformed"] == 0
        # Parent side: one SPEC per worker, plus batch/finish/stop frames.
        # Workers each reply with one RESULT frame (counted in their own
        # deltas, which merge back after the RESULT ships — so only the
        # parent's sends are guaranteed visible here).
        assert COUNTERS.frames_sent >= 2 * 3
        assert COUNTERS.frames_bytes > 0


# ------------------------------------------------------------------ digests


class TestMergedDigest:
    def test_digest_ignores_row_order(self):
        rows = [("b", 1), ("a", 2), ("c", 0)]
        assert merged_alert_digest(rows) == merged_alert_digest(rows[::-1])

    def test_rows_exclude_alert_ids(self):
        registry = two_tenant_registry()
        plane = DetectionPlane(registry, batch_size=1)
        plane.ingest(make_event(1.0, "10.0.0.0/24", (1, 666)))
        for row in plane.incident_rows():
            assert isinstance(row[0], str)  # tenant leads
            # Nothing in the row is a per-manager alert id.
            assert plane.alert_managers()[row[0]].alerts[0].id not in row[2:5]


# -------------------------------------------------------------------- synth


class TestSynth:
    def test_observed_origin_map_takes_first_origin(self):
        events = [
            make_event(1.0, "10.0.0.0/24", (1, 65001)),
            make_event(2.0, "10.0.0.0/24", (1, 666)),
            make_event(3.0, "10.1.0.0/24", (2, 65002)),
        ]
        origins = observed_origin_map(events)
        assert origins[Prefix.parse("10.0.0.0/24")] == 65001
        assert origins[Prefix.parse("10.1.0.0/24")] == 65002

    def test_build_synth_registry_shape(self):
        origins = {
            Prefix.parse("10.0.0.0/24"): 65001,
            Prefix.parse("10.1.0.0/24"): 65002,
        }
        registry = build_synth_registry(origins, num_tenants=10, num_prefixes=200)
        assert len(registry) == 10
        assert registry.num_rules == 200
        # Live prefixes are spread over every tenant; padding is dense /24s.
        live_watchers = PrefixTree(registry).tenants_at(Prefix.parse("10.0.0.0/24"))
        assert len(live_watchers) == 10
        assert str(pad_prefix(0)) == "11.0.0.0/24"

    def test_synth_registry_deterministic(self):
        origins = {Prefix.parse("10.0.0.0/24"): 65001}
        one = build_synth_registry(origins, num_tenants=5, num_prefixes=50)
        two = build_synth_registry(origins, num_tenants=5, num_prefixes=50)
        assert one.to_spec() == two.to_spec()
