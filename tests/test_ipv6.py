"""IPv6 end-to-end tests: the whole stack is address-family agnostic."""

import pytest

from repro.net.prefix import Prefix
from repro.testbed.scenario import HijackExperiment

from conftest import fast_scenario


def P(text):
    return Prefix.parse(text)


class TestV6Propagation:
    def test_v6_announcement_reaches_everyone(self, net7):
        net7.announce(6, "2001:db8::/32")
        net7.run_until_converged()
        for asn in net7.asns():
            assert net7.resolve_origin(asn, "2001:db8::1") == 6

    def test_v6_and_v4_coexist_in_ribs(self, net7):
        net7.announce(6, "2001:db8::/32")
        net7.announce(6, "10.0.0.0/23")
        net7.run_until_converged()
        speaker = net7.speaker(7)
        assert speaker.resolve_origin("2001:db8::1") == 6
        assert speaker.resolve_origin("10.0.0.1") == 6

    def test_v6_longer_than_48_filtered(self, net7):
        net7.announce(6, "2001:db8::/49")
        net7.run_until_converged()
        for asn in net7.asns():
            if asn == 6:
                continue
            assert net7.speaker(asn).best_route(P("2001:db8::/49")) is None


class TestV6Experiment:
    def test_v47_hijack_fully_mitigated(self):
        config = fast_scenario(seed=9, prefix="2001:db8::/47")
        result = HijackExperiment(config).run()
        assert result.alert_type == "exact-origin"
        assert result.strategy == "deaggregate"
        assert result.mitigated
        assert result.residual_hijack_fraction == 0.0

    def test_v48_hijack_compete_only(self):
        config = fast_scenario(
            seed=9, prefix="2001:db8::/48", observation_window=120.0
        )
        result = HijackExperiment(config).run()
        assert result.strategy == "compete"
        assert not result.mitigated
        assert result.residual_hijack_fraction > 0.0

    def test_v6_deaggregation_prefix_lengths(self):
        config = fast_scenario(seed=9, prefix="2001:db8::/47")
        experiment = HijackExperiment(config)
        experiment.run()
        action = experiment.artemis.actions[0]
        assert [p.length for p in action.prefixes] == [48, 48]
        assert all(p.version == 6 for p in action.prefixes)
