"""Public API surface tests: everything advertised in __all__ exists and
the errors hierarchy behaves."""

import importlib

import pytest

import repro
from repro import errors


PACKAGES = [
    "repro",
    "repro.net",
    "repro.sim",
    "repro.bgp",
    "repro.topology",
    "repro.internet",
    "repro.feeds",
    "repro.sdn",
    "repro.core",
    "repro.testbed",
    "repro.baselines",
    "repro.eval",
    "repro.viz",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_package_all_resolves(name):
    module = importlib.import_module(name)
    assert hasattr(module, "__all__"), f"{name} has no __all__"
    for symbol in module.__all__:
        assert hasattr(module, symbol), f"{name}.{symbol} missing"


def test_version():
    assert repro.__version__ == "1.0.0"


def test_top_level_quickstart_symbols():
    # The README's quickstart imports must work.
    from repro import HijackExperiment, Prefix, ScenarioConfig  # noqa: F401


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                if obj is not errors.ReproError:
                    assert issubclass(obj, errors.ReproError), name

    def test_prefix_error_is_value_error(self):
        assert issubclass(errors.PrefixError, ValueError)

    def test_catchable_as_repro_error(self):
        from repro.net.prefix import Prefix

        with pytest.raises(errors.ReproError):
            Prefix.parse("not-a-prefix")
