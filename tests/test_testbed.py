"""Tests for the PEERING-style testbed."""

import pytest

from repro.errors import TestbedError
from repro.net.prefix import Prefix
from repro.testbed.peering import VIRTUAL_ASN_BASE, PeeringTestbed


def P(text):
    return Prefix.parse(text)


class TestSites:
    def test_available_sites_are_transit(self, net7):
        testbed = PeeringTestbed(net7)
        sites = testbed.available_sites()
        assert set(sites) == {1, 2, 3, 4, 5}  # tiers 1 and 2 only

    def test_pick_sites_distinct_and_deterministic(self, net7):
        a = PeeringTestbed(net7, seed=3).pick_sites(3)
        import conftest
        from repro.internet.network import Network

        net_again = Network(conftest.tiny_graph(), config=conftest.fast_network_config(), seed=42)
        b = PeeringTestbed(net_again, seed=3).pick_sites(3)
        assert a == b
        assert len(set(a)) == 3

    def test_pick_sites_exclude(self, net7):
        testbed = PeeringTestbed(net7, seed=1)
        sites = testbed.pick_sites(2, exclude=[1, 2, 3])
        assert set(sites).issubset({4, 5})

    def test_pick_too_many(self, net7):
        with pytest.raises(TestbedError):
            PeeringTestbed(net7).pick_sites(99)


class TestVirtualAS:
    def test_create_and_announce(self, net7):
        testbed = PeeringTestbed(net7, seed=1)
        virtual = testbed.create_virtual_as([3, 5])
        assert virtual.asn == VIRTUAL_ASN_BASE
        assert virtual.sites == [3, 5]
        virtual.announce("10.0.0.0/23")
        net7.run_until_converged()
        assert net7.fraction_routing_to("10.0.0.5", virtual.asn) == 1.0
        assert virtual.announced == [P("10.0.0.0/23")]

    def test_withdraw(self, net7):
        testbed = PeeringTestbed(net7, seed=1)
        virtual = testbed.create_virtual_as([3])
        virtual.announce("10.0.0.0/23")
        net7.run_until_converged()
        virtual.withdraw("10.0.0.0/23")
        net7.run_until_converged()
        assert net7.fraction_routing_to("10.0.0.5", virtual.asn) == 0.0

    def test_sequential_asns(self, net7):
        testbed = PeeringTestbed(net7, seed=1)
        first = testbed.create_virtual_as([3])
        second = testbed.create_virtual_as([4])
        assert second.asn == first.asn + 1
        assert len(testbed.virtual_ases) == 2

    def test_needs_sites(self, net7):
        with pytest.raises(TestbedError):
            PeeringTestbed(net7).create_virtual_as([])

    def test_two_virtual_ases_compete(self, net7):
        # The paper's experiment skeleton: same prefix from two virtual ASes.
        testbed = PeeringTestbed(net7, seed=1)
        victim = testbed.create_virtual_as([3])
        hijacker = testbed.create_virtual_as([5])
        victim.announce("10.0.0.0/23")
        net7.run_until_converged()
        hijacker.announce("10.0.0.0/23")
        net7.run_until_converged()
        origins = set(net7.origin_map("10.0.0.5").values())
        assert victim.asn in origins and hijacker.asn in origins
