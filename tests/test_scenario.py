"""Integration tests for the full three-phase hijack experiment."""

import pytest

from repro.errors import ExperimentError
from repro.internet.churn import ChurnConfig
from repro.net.prefix import Prefix
from repro.testbed.scenario import ExperimentResult, HijackExperiment

from conftest import fast_scenario


class TestFullExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return HijackExperiment(fast_scenario(seed=11)).run()

    def test_detected(self, result):
        assert result.detection_delay is not None
        assert result.detection_delay > 0
        assert result.alert_type == "exact-origin"

    def test_announce_delay_matches_controller(self, result):
        # Default controller programming delay is U(10, 20).
        assert 10.0 <= result.announce_delay <= 20.0

    def test_mitigated_fully(self, result):
        assert result.mitigated
        assert result.strategy == "deaggregate"
        assert result.residual_hijack_fraction == 0.0

    def test_timeline_ordering(self, result):
        assert result.total_time == pytest.approx(
            result.detection_delay + result.announce_delay + result.completion_delay
        )

    def test_hijack_spread_observed(self, result):
        assert 0.0 < result.hijack_fraction_peak < 1.0

    def test_per_source_delays_contain_winner(self, result):
        assert result.per_source_delay
        assert min(result.per_source_delay.values()) == pytest.approx(
            result.detection_delay
        )

    def test_series_populated(self, result):
        assert result.ground_truth_series
        assert result.ground_truth_series[-1][1] == 1.0
        assert result.monitor_series

    def test_victim_and_hijacker_distinct(self, result):
        assert result.victim_asn != result.hijacker_asn

    def test_to_dict_roundtrips_jsonable(self, result):
        import json

        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["mitigated"] is True
        assert payload["prefix"] == "10.0.0.0/23"


class TestVariants:
    def test_deterministic_given_seed(self):
        a = HijackExperiment(fast_scenario(seed=4)).run()
        b = HijackExperiment(fast_scenario(seed=4)).run()
        assert a.detection_delay == b.detection_delay
        assert a.total_time == b.total_time

    def test_seeds_differ(self):
        a = HijackExperiment(fast_scenario(seed=4)).run()
        b = HijackExperiment(fast_scenario(seed=5)).run()
        assert (a.detection_delay, a.total_time) != (b.detection_delay, b.total_time)

    def test_auto_mitigate_off_observes_only(self):
        config = fast_scenario(seed=6, auto_mitigate=False, observation_window=120.0)
        result = HijackExperiment(config).run()
        assert result.detection_delay is not None
        assert result.announce_delay is None
        assert not result.mitigated
        assert result.residual_hijack_fraction > 0.0

    def test_slash24_prefix_not_fully_mitigated(self):
        config = fast_scenario(
            seed=7, prefix="10.0.0.0/24", observation_window=120.0
        )
        result = HijackExperiment(config).run()
        assert result.detection_delay is not None
        assert result.strategy == "compete"
        assert not result.mitigated

    def test_with_light_churn(self):
        config = fast_scenario(
            seed=8,
            churn=ChurnConfig(pool_size=5, event_rate=0.1),
            churn_warmup=30.0,
        )
        result = HijackExperiment(config).run()
        assert result.mitigated

    def test_setup_idempotent(self):
        experiment = HijackExperiment(fast_scenario(seed=9))
        experiment.setup()
        network = experiment.network
        experiment.setup()
        assert experiment.network is network

    def test_phase_walls_recorded_but_not_serialized(self):
        experiment = HijackExperiment(fast_scenario(seed=11))
        result = experiment.run()
        assert set(result.phase_walls) == {"setup", "phase1", "phase2", "phase3"}
        assert all(seconds >= 0 for seconds in result.phase_walls.values())
        # Host wall-clock must never leak into serialized results (they are
        # compared bit-for-bit across job counts and machines).
        assert "phase_walls" not in result.to_dict()

    def test_shared_graph_not_mutated_and_reusable_across_seeds(self):
        from repro.eval.experiments import run_artemis_suite
        from repro.topology.generator import GeneratorConfig, generate_internet

        graph = generate_internet(
            GeneratorConfig(num_tier1=3, num_tier2=8, num_stubs=20), seed=2
        )
        size_before = len(graph)
        template = fast_scenario(seed=0, graph=graph)
        # Two seeds against ONE pre-built topology: each run grafts its
        # virtual ASes onto a private copy, so the template's graph stays
        # pristine and the second seed does not collide with the first.
        results = run_artemis_suite(template, seeds=[1, 2])
        assert len(results) == 2
        assert all(result.mitigated for result in results)
        assert len(graph) == size_before
