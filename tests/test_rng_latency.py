"""Tests for seeded RNG substreams and delay distributions."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.sim.latency import (
    Constant,
    Exponential,
    LogNormal,
    Shifted,
    Uniform,
    make_delay,
)
from repro.sim.rng import SeededRNG, derive_seed, make_rng


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_name_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_order_sensitivity(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")


class TestSeededRNG:
    def test_same_seed_same_stream(self):
        a, b = SeededRNG(7), SeededRNG(7)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_substream_independent_of_parent_consumption(self):
        parent1 = SeededRNG(3)
        parent2 = SeededRNG(3)
        parent2.random()  # consume from the parent stream
        assert parent1.substream("x").random() == parent2.substream("x").random()

    def test_substreams_differ(self):
        rng = SeededRNG(3)
        assert rng.substream("a").random() != rng.substream("b").random()

    def test_jittered_bounds(self):
        rng = SeededRNG(1)
        for _ in range(100):
            value = rng.jittered(10.0, 0.2)
            assert 8.0 <= value <= 12.0

    def test_jittered_negative_fraction(self):
        with pytest.raises(ValueError):
            SeededRNG(1).jittered(1.0, -0.1)

    def test_make_rng_none(self):
        assert make_rng(None).base_seed == 0
        assert make_rng(9).base_seed == 9


class TestDistributions:
    def test_constant(self):
        delay = Constant(2.5)
        assert delay.sample(SeededRNG(0)) == 2.5
        assert delay.mean == 2.5

    def test_constant_negative_rejected(self):
        with pytest.raises(SimulationError):
            Constant(-1.0)

    def test_uniform_bounds_and_mean(self):
        delay = Uniform(1.0, 3.0)
        rng = SeededRNG(0)
        samples = [delay.sample(rng) for _ in range(500)]
        assert all(1.0 <= s <= 3.0 for s in samples)
        assert abs(sum(samples) / len(samples) - delay.mean) < 0.2

    def test_uniform_invalid(self):
        with pytest.raises(SimulationError):
            Uniform(3.0, 1.0)
        with pytest.raises(SimulationError):
            Uniform(-1.0, 1.0)

    def test_exponential_mean(self):
        delay = Exponential(4.0)
        rng = SeededRNG(1)
        samples = [delay.sample(rng) for _ in range(4000)]
        assert abs(sum(samples) / len(samples) - 4.0) < 0.4
        assert all(s >= 0 for s in samples)

    def test_exponential_invalid(self):
        with pytest.raises(SimulationError):
            Exponential(0.0)

    def test_lognormal_mean_is_actual_mean(self):
        delay = LogNormal(mean=10.0, sigma=0.5)
        rng = SeededRNG(2)
        samples = [delay.sample(rng) for _ in range(8000)]
        assert abs(sum(samples) / len(samples) - 10.0) < 1.0
        assert delay.mean == 10.0

    def test_lognormal_invalid(self):
        with pytest.raises(SimulationError):
            LogNormal(mean=0.0)
        with pytest.raises(SimulationError):
            LogNormal(mean=1.0, sigma=0.0)

    def test_shifted_floor(self):
        delay = Shifted(5.0, Exponential(1.0))
        rng = SeededRNG(3)
        assert all(delay.sample(rng) >= 5.0 for _ in range(200))
        assert delay.mean == 6.0

    def test_shifted_negative_floor(self):
        with pytest.raises(SimulationError):
            Shifted(-1.0, Constant(0.0))


class TestMakeDelay:
    def test_passthrough(self):
        delay = Constant(1.0)
        assert make_delay(delay) is delay

    def test_number(self):
        assert isinstance(make_delay(3), Constant)
        assert make_delay(3.5).mean == 3.5

    def test_tuple(self):
        delay = make_delay((1.0, 2.0))
        assert isinstance(delay, Uniform)

    def test_tuple_wrong_arity(self):
        with pytest.raises(SimulationError):
            make_delay((1.0, 2.0, 3.0))

    def test_dict_specs(self):
        assert isinstance(make_delay({"kind": "constant", "value": 1}), Constant)
        assert isinstance(
            make_delay({"kind": "uniform", "low": 1, "high": 2}), Uniform
        )
        assert isinstance(make_delay({"kind": "exponential", "mean": 2}), Exponential)
        assert isinstance(make_delay({"kind": "lognormal", "mean": 2}), LogNormal)
        shifted = make_delay({"kind": "shifted", "floor": 1, "mean": 2})
        assert isinstance(shifted, Shifted)
        assert shifted.mean == 3.0

    def test_unknown_kind(self):
        with pytest.raises(SimulationError):
            make_delay({"kind": "pareto", "mean": 1})

    def test_unbuildable(self):
        with pytest.raises(SimulationError):
            make_delay(object())


@given(st.integers(min_value=0, max_value=2**32))
def test_substream_determinism_property(seed):
    assert (
        SeededRNG(seed).substream("x", 1).random()
        == SeededRNG(seed).substream("x", 1).random()
    )
