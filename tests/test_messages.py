"""Tests for BGP UPDATE message objects."""

import pytest

from repro.bgp.messages import (
    ORIGIN_EGP,
    ORIGIN_IGP,
    Announcement,
    UpdateMessage,
    Withdrawal,
    single_announcement,
    single_withdrawal,
)
from repro.errors import BGPError
from repro.net.prefix import Prefix


def P(text):
    return Prefix.parse(text)


class TestAnnouncement:
    def test_origin_and_sender(self):
        a = Announcement(P("10.0.0.0/23"), [3356, 1299, 64500])
        assert a.origin_as == 64500
        assert a.sender_as == 3356

    def test_empty_path_rejected(self):
        with pytest.raises(BGPError):
            Announcement(P("10.0.0.0/23"), [])

    def test_invalid_origin_attr(self):
        with pytest.raises(BGPError):
            Announcement(P("10.0.0.0/23"), [1], origin_attr=7)

    def test_prepended(self):
        a = Announcement(P("10.0.0.0/23"), [2, 3])
        b = a.prepended(1)
        assert b.as_path == (1, 2, 3)
        assert a.as_path == (2, 3)  # original untouched

    def test_prepend_multiple(self):
        a = Announcement(P("10.0.0.0/23"), [2])
        assert a.prepended(1, times=3).as_path == (1, 1, 1, 2)

    def test_prepend_zero_rejected(self):
        with pytest.raises(BGPError):
            Announcement(P("10.0.0.0/23"), [2]).prepended(1, times=0)

    def test_has_loop(self):
        a = Announcement(P("10.0.0.0/23"), [3, 2, 1])
        assert a.has_loop(2)
        assert not a.has_loop(9)

    def test_equality_and_hash(self):
        a = Announcement(P("10.0.0.0/23"), [1, 2])
        b = Announcement(P("10.0.0.0/23"), [1, 2])
        assert a == b and hash(a) == hash(b)
        assert a != Announcement(P("10.0.0.0/23"), [1, 3])
        assert a != Announcement(P("10.0.0.0/23"), [1, 2], origin_attr=ORIGIN_EGP)

    def test_path_is_tuple_of_ints(self):
        a = Announcement(P("10.0.0.0/23"), ["1", 2.0])
        assert a.as_path == (1, 2)


class TestWithdrawal:
    def test_equality(self):
        assert Withdrawal(P("10.0.0.0/24")) == Withdrawal(P("10.0.0.0/24"))
        assert Withdrawal(P("10.0.0.0/24")) != Withdrawal(P("10.0.1.0/24"))

    def test_hash_differs_from_announcement(self):
        w = Withdrawal(P("10.0.0.0/24"))
        assert hash(w) != hash(P("10.0.0.0/24"))


class TestUpdateMessage:
    def test_must_carry_something(self):
        with pytest.raises(BGPError):
            UpdateMessage(1)

    def test_sender_must_match_paths(self):
        good = Announcement(P("10.0.0.0/23"), [1, 2])
        UpdateMessage(1, announcements=[good])
        with pytest.raises(BGPError):
            UpdateMessage(9, announcements=[good])

    def test_size(self):
        message = UpdateMessage(
            1,
            announcements=[Announcement(P("10.0.0.0/24"), [1, 2])],
            withdrawals=[Withdrawal(P("10.0.1.0/24")), Withdrawal(P("10.0.2.0/24"))],
        )
        assert message.size == 3

    def test_single_announcement_helper(self):
        message = single_announcement(P("10.0.0.0/23"), [5, 6], ORIGIN_IGP)
        assert message.sender_asn == 5
        assert len(message.announcements) == 1

    def test_single_withdrawal_helper(self):
        message = single_withdrawal(5, P("10.0.0.0/23"))
        assert message.sender_asn == 5
        assert message.withdrawals[0].prefix == P("10.0.0.0/23")
