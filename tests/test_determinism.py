"""Golden determinism regression tests.

The hot-path rework (allocation-light engine, shared export announcements,
interned paths/prefixes, exact-match Loc-RIB) must not change *any* simulated
outcome — only wall-clock time.  These tests pin that down two ways:

* a golden sha256 digest of a fully seeded E1-style scenario, hard-coded
  from the pre-optimisation seed tree, so any behavioural drift (timings,
  per-source delays, BGP update counts, data-plane flips) fails loudly;
* a jobs=1 vs jobs=N comparison of the suite runner, proving the
  multiprocessing fan-out returns byte-identical per-seed results in order.

The digest deliberately excludes engine-internal counters such as
``events_processed``: skipping provably no-op flush events is allowed to
shrink the event count, as long as every observable outcome is unchanged.
"""

import hashlib

import pytest

from repro.eval.experiments import run_artemis_suite
from repro.testbed.scenario import HijackExperiment, ScenarioConfig
from repro.topology.generator import GeneratorConfig

#: Digest of the golden scenario's observable outcome, recorded on the seed
#: tree (pre-optimisation) and unchanged by the hot-path rework.
GOLDEN_DIGEST = "25540de545722a0452b9109df6ff90ebcb9a84658fcdbef752ddda6bf11b3b31"

#: Same idea at 400 ASes: big enough that the incremental decision process,
#: export marking and MRAI batching are all exercised under real fan-out,
#: small enough to run in CI.  Recorded before the Internet-scale hot-path
#: work landed.
GOLDEN_DIGEST_400 = (
    "b55ade9b9b56229edef59174909b0e37314662757e1a5310c21a0cb757890975"
)


def _golden_config(seed: int = 5) -> ScenarioConfig:
    return ScenarioConfig(
        seed=seed,
        topology=GeneratorConfig(num_tier1=3, num_tier2=10, num_stubs=25),
        churn=None,
        churn_warmup=0.0,
        baseline_settle=60.0,
        monitors=dict(
            num_ris_vantages=6,
            num_bgpmon_vantages=4,
            num_lgs=4,
            lg_poll_interval=30.0,
            num_batch_vantages=4,
        ),
    )


def _outcome_digest(experiment: HijackExperiment, result) -> str:
    speakers = experiment.network.speakers
    updates = (
        sum(s.updates_received for s in speakers.values()),
        sum(s.updates_sent for s in speakers.values()),
    )
    material = repr(
        (
            result.detection_delay,
            result.announce_delay,
            result.completion_delay,
            result.total_time,
            sorted(result.per_source_delay.items()),
            result.hijack_fraction_peak,
            result.residual_hijack_fraction,
            result.alert_type,
            result.strategy,
            updates,
            experiment.tracker.flips,
        )
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def _golden_config_400() -> ScenarioConfig:
    return ScenarioConfig(
        seed=7,
        topology=GeneratorConfig(num_tier1=6, num_tier2=44, num_stubs=350),
        churn=None,
        churn_warmup=0.0,
        baseline_settle=60.0,
        monitors=dict(
            num_ris_vantages=10,
            num_bgpmon_vantages=6,
            num_lgs=6,
            lg_poll_interval=30.0,
            num_batch_vantages=6,
        ),
    )


def test_golden_scenario_digest_matches_seed_tree():
    experiment = HijackExperiment(_golden_config())
    result = experiment.run()
    assert _outcome_digest(experiment, result) == GOLDEN_DIGEST


@pytest.mark.slow
def test_golden_400as_digest_matches_seed_tree():
    experiment = HijackExperiment(_golden_config_400())
    result = experiment.run()
    assert _outcome_digest(experiment, result) == GOLDEN_DIGEST_400


def test_same_seed_twice_is_bit_identical():
    first_exp = HijackExperiment(_golden_config(seed=9))
    first = _outcome_digest(first_exp, first_exp.run())
    second_exp = HijackExperiment(_golden_config(seed=9))
    second = _outcome_digest(second_exp, second_exp.run())
    assert first == second


@pytest.mark.slow
def test_parallel_suite_matches_serial():
    template = ScenarioConfig(
        seed=0,
        topology=GeneratorConfig(num_tier1=3, num_tier2=10, num_stubs=25),
        churn=None,
        churn_warmup=0.0,
        baseline_settle=60.0,
    )
    seeds = [1, 2, 3, 4]
    serial = run_artemis_suite(template, seeds, jobs=1)
    parallel = run_artemis_suite(template, seeds, jobs=2)
    assert [r.seed for r in parallel] == seeds
    assert [r.to_dict() for r in parallel] == [r.to_dict() for r in serial]


def test_parallel_runner_rejects_bad_jobs():
    template = ScenarioConfig(seed=0)
    with pytest.raises(ValueError):
        run_artemis_suite(template, [1], jobs=0)


# ------------------------------------------------------- sharded propagation
#
# The sharded engine's whole contract is that partitioning the AS graph
# across worker processes is an implementation detail: the pinned scenario's
# outcome digest (per-phase origin maps, flip log, detection delay, traffic
# totals) must not depend on the shard count, the RIB representation, or
# which run of the same configuration produced it.

SHARD_TOPOLOGY = GeneratorConfig(num_tier1=4, num_tier2=12, num_stubs=40)


def _shard_digest(num_shards: int, compact: bool = False) -> str:
    from repro.shard.scenario import ShardScenarioConfig, run_shard_scenario

    result = run_shard_scenario(
        ShardScenarioConfig(
            topology=SHARD_TOPOLOGY,
            seed=7,
            num_shards=num_shards,
            compact=compact,
        )
    )
    return result.digest


def test_sharded_scenario_matches_single_process():
    reference = _shard_digest(1)
    assert _shard_digest(2) == reference
    assert _shard_digest(4) == reference


def test_sharded_scenario_repeat_is_bit_identical():
    assert _shard_digest(2) == _shard_digest(2)


def test_compact_rib_matches_classic_across_shards():
    reference = _shard_digest(1, compact=False)
    assert _shard_digest(1, compact=True) == reference
    assert _shard_digest(2, compact=True) == reference
