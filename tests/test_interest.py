"""Tests for the trie-backed subscription interest index."""

import pytest

from repro.feeds.interest import InterestIndex, Subscription
from repro.net.prefix import Prefix


def P(text):
    return Prefix.parse(text)


class TestSubscription:
    def test_wildcard_matches_everything(self):
        sub = Subscription(lambda e: None, None)
        assert sub.matches(P("10.0.0.0/23"))
        assert sub.matches(P("2001:db8::/32"))

    def test_filter_matches_overlap_both_directions(self):
        sub = Subscription(lambda e: None, [P("10.0.0.0/23")])
        assert sub.matches(P("10.0.0.0/23"))  # exact
        assert sub.matches(P("10.0.0.0/24"))  # more specific
        assert sub.matches(P("10.0.0.0/16"))  # covering
        assert not sub.matches(P("10.0.2.0/24"))  # sibling


class TestInterestIndex:
    def test_wildcard_lookup(self):
        index = InterestIndex()
        sub = index.add(lambda e: None)
        assert index.lookup(P("99.0.0.0/16")) == [sub]
        assert index.any_match(P("2001:db8::/32"))

    def test_covering_and_covered_both_match(self):
        index = InterestIndex()
        sub = index.add(lambda e: None, [P("10.0.0.0/23")])
        assert index.lookup(P("10.0.0.0/23")) == [sub]  # exact
        assert index.lookup(P("10.0.0.0/24")) == [sub]  # observed inside filter
        assert index.lookup(P("10.0.0.0/8")) == [sub]  # observed covers filter
        assert index.lookup(P("10.0.2.0/24")) == []  # disjoint
        assert index.lookup(P("11.0.0.0/23")) == []

    def test_lookup_agrees_with_linear_scan(self):
        index = InterestIndex()
        filters = [
            None,
            [P("10.0.0.0/23")],
            [P("10.0.0.0/16"), P("99.1.0.0/24")],
            [P("0.0.0.0/0")],
            [P("2001:db8::/32")],
        ]
        subs = [index.add(lambda e: None, f) for f in filters]
        observed = [
            P("10.0.0.0/23"), P("10.0.1.0/24"), P("10.200.0.0/16"),
            P("99.1.0.128/25"), P("99.2.0.0/16"), P("2001:db8:1::/48"),
            P("172.16.0.0/12"),
        ]
        for prefix in observed:
            expected = [s for s in subs if s.matches(prefix)]
            assert index.lookup(prefix) == expected

    def test_delivery_order_is_subscription_order(self):
        index = InterestIndex()
        # Register in a deliberately "bad" trie order: the covering /8
        # first would otherwise be visited before the /24.
        a = index.add(lambda e: None, [P("10.0.0.0/24")])
        b = index.add(lambda e: None)
        c = index.add(lambda e: None, [P("10.0.0.0/8")])
        assert index.lookup(P("10.0.0.0/24")) == [a, b, c]

    def test_multiple_filters_deduplicated(self):
        index = InterestIndex()
        sub = index.add(lambda e: None, [P("10.0.0.0/16"), P("10.0.0.0/24")])
        # Both filter prefixes overlap the observation; one delivery only.
        assert index.lookup(P("10.0.0.0/23")) == [sub]

    def test_shared_filter_prefix(self):
        index = InterestIndex()
        a = index.add(lambda e: None, [P("10.0.0.0/23")])
        b = index.add(lambda e: None, [P("10.0.0.0/23")])
        assert index.lookup(P("10.0.0.0/24")) == [a, b]
        index.discard(a)
        assert index.lookup(P("10.0.0.0/24")) == [b]

    def test_discard_is_idempotent_and_updates_size(self):
        index = InterestIndex()
        sub = index.add(lambda e: None, [P("10.0.0.0/23")])
        assert len(index) == 1
        index.discard(sub)
        index.discard(sub)
        assert len(index) == 0
        assert not index.any_match(P("10.0.0.0/23"))

    def test_inactive_subscription_skipped_and_lazily_dropped(self):
        index = InterestIndex()
        sub = index.add(lambda e: None, [P("10.0.0.0/23")])
        sub.active = False
        assert index.lookup(P("10.0.0.0/23")) == []
        # Lazy cleanup removed it from the index entirely.
        assert len(index) == 0

    def test_mixed_versions_do_not_cross_match(self):
        index = InterestIndex()
        v4 = index.add(lambda e: None, [P("10.0.0.0/8")])
        v6 = index.add(lambda e: None, [P("2001:db8::/32")])
        assert index.lookup(P("10.1.0.0/16")) == [v4]
        assert index.lookup(P("2001:db8::/48")) == [v6]

    def test_default_route_filter_matches_whole_version(self):
        index = InterestIndex()
        sub = index.add(lambda e: None, [P("0.0.0.0/0")])
        assert index.lookup(P("203.0.113.0/24")) == [sub]
        assert index.lookup(P("2001:db8::/32")) == []

    def test_counters(self):
        index = InterestIndex()
        index.add(lambda e: None, [P("10.0.0.0/23")])
        index.lookup(P("10.0.0.0/24"))
        index.lookup(P("99.0.0.0/16"))
        assert index.lookups == 2
        assert index.hits == 1

    def test_any_match_does_not_touch_counters(self):
        index = InterestIndex()
        index.add(lambda e: None, [P("10.0.0.0/23")])
        assert index.any_match(P("10.0.0.0/24"))
        assert not index.any_match(P("99.0.0.0/16"))
        assert index.lookups == 0
