"""Tests for the scale-free generator, including external-validity runs."""

import pytest

from repro.errors import TopologyError
from repro.internet.network import Network
from repro.testbed.scenario import HijackExperiment
from repro.topology.scalefree import ScaleFreeConfig, generate_scalefree_internet
from repro.topology.stats import cone_sizes, degree_histogram

from conftest import fast_network_config, fast_scenario


class TestGeneration:
    def test_size_and_validity(self):
        graph = generate_scalefree_internet(ScaleFreeConfig(num_ases=120), seed=1)
        assert len(graph) == 120
        graph.validate()  # acyclic + connected

    def test_deterministic(self):
        a = generate_scalefree_internet(ScaleFreeConfig(num_ases=80), seed=7)
        b = generate_scalefree_internet(ScaleFreeConfig(num_ases=80), seed=7)
        assert list(a.links()) == list(b.links())

    def test_heavy_tailed_degrees(self):
        graph = generate_scalefree_internet(ScaleFreeConfig(num_ases=300), seed=2)
        histogram = degree_histogram(graph)
        max_degree = max(histogram)
        # A hub far above the median is the scale-free signature.
        degrees = sorted(
            d for d, count in histogram.items() for _ in range(count)
        )
        median = degrees[len(degrees) // 2]
        assert max_degree > 8 * median

    def test_hubs_have_big_cones(self):
        graph = generate_scalefree_internet(ScaleFreeConfig(num_ases=200), seed=3)
        cones = cone_sizes(graph)
        assert max(cones.values()) > len(graph) * 0.3

    def test_every_new_as_has_provider(self):
        graph = generate_scalefree_internet(ScaleFreeConfig(num_ases=100), seed=4)
        for node in graph.nodes():
            if "tier1" not in node.tags:
                assert graph.providers_of(node.asn)

    def test_config_validation(self):
        with pytest.raises(TopologyError):
            ScaleFreeConfig(num_ases=3, seed_clique=4)
        with pytest.raises(TopologyError):
            ScaleFreeConfig(seed_clique=1)
        with pytest.raises(TopologyError):
            ScaleFreeConfig(min_providers=3, max_providers=2)
        with pytest.raises(TopologyError):
            ScaleFreeConfig(peering_fraction=2.0)


class TestExternalValidity:
    """The reproduction's shape must survive a different topology family."""

    def test_bgp_converges_on_scalefree(self):
        graph = generate_scalefree_internet(ScaleFreeConfig(num_ases=80), seed=5)
        network = Network(graph, config=fast_network_config(), seed=5)
        origin = graph.stubs()[0]
        network.announce(origin, "10.0.0.0/23")
        network.run_until_converged()
        assert network.fraction_routing_to("10.0.0.1", origin) == 1.0

    def test_full_experiment_on_scalefree(self):
        graph = generate_scalefree_internet(ScaleFreeConfig(num_ases=60), seed=6)
        config = fast_scenario(seed=6, graph=graph)
        result = HijackExperiment(config).run()
        assert result.detection_delay is not None
        assert result.mitigated
        assert result.strategy == "deaggregate"
