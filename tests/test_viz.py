"""Tests for the geographic map and timeline renderers."""

import json

import pytest

from repro.errors import ReproError
from repro.net.prefix import Prefix
from repro.testbed.scenario import ExperimentResult
from repro.topology.geo import region_by_name
from repro.topology.graph import ASGraph
from repro.viz.geomap import GeoMapRenderer
from repro.viz.timeline import (
    ExperimentTimeline,
    render_experiment_report,
)


@pytest.fixture
def geo_graph():
    graph = ASGraph()
    graph.add_as(1, tier=1, region=region_by_name("amsterdam"))
    graph.add_as(2, tier=2, region=region_by_name("tokyo"))
    graph.add_as(3, tier=2, region=region_by_name("new-york"))
    graph.add_as(4, tier=3)  # no region
    graph.add_peering(1, 2)
    graph.add_customer_provider(3, 1)
    graph.add_customer_provider(4, 1)
    return graph


class TestGeoMap:
    def test_frame_marks_states(self, geo_graph):
        renderer = GeoMapRenderer(geo_graph, legit_origins={100})
        frame = renderer.ascii_frame({1: 100, 2: 666, 3: None})
        assert "O=legit(1)" in frame
        assert "X=hijacked(1)" in frame
        assert ".=unknown(1)" in frame
        assert "O" in frame and "X" in frame

    def test_vantage_without_region_skipped(self, geo_graph):
        renderer = GeoMapRenderer(geo_graph, legit_origins={100})
        states = renderer.vantage_states({4: 100})
        assert states == []

    def test_unknown_asn_skipped(self, geo_graph):
        renderer = GeoMapRenderer(geo_graph, legit_origins={100})
        assert renderer.vantage_states({999: 100}) == []

    def test_hijacked_wins_cell_collisions(self, geo_graph):
        # Two vantages in the same city, one hijacked: X must show.
        graph = geo_graph
        graph.add_as(5, tier=2, region=region_by_name("amsterdam"))
        graph.add_customer_provider(5, 1)
        renderer = GeoMapRenderer(graph, legit_origins={100})
        frame = renderer.ascii_frame({1: 100, 5: 666})
        grid_lines = [l for l in frame.splitlines() if l.startswith("|")]
        assert any("X" in line for line in grid_lines)
        assert not any("O" in line for line in grid_lines)

    def test_canvas_validation(self, geo_graph):
        with pytest.raises(ReproError):
            GeoMapRenderer(geo_graph, {1}, width=5, height=2)

    def test_json_export(self, geo_graph):
        renderer = GeoMapRenderer(geo_graph, legit_origins={100})
        frames = [(0.0, {1: 100}), (10.0, {1: 666})]
        payload = json.loads(renderer.to_json(frames))
        assert payload["legit_origins"] == [100]
        assert len(payload["frames"]) == 2
        assert payload["frames"][0]["vantages"][0]["state"] == "legit"
        assert payload["frames"][1]["vantages"][0]["state"] == "hijacked"

    def test_frames_from_transitions(self, geo_graph):
        renderer = GeoMapRenderer(geo_graph, legit_origins={100})
        prefix = Prefix.parse("10.0.0.0/23")
        transitions = [
            (0.0, 1, prefix, 100),
            (5.0, 2, prefix, 100),
            (10.0, 2, prefix, 666),
            (20.0, 2, prefix, 100),
        ]
        frames = renderer.frames_from_transitions(transitions, max_frames=3)
        assert len(frames) <= 3
        assert frames[-1][0] == 20.0
        assert frames[-1][1][2] == 100

    def test_frames_from_empty_transitions(self, geo_graph):
        renderer = GeoMapRenderer(geo_graph, legit_origins={100})
        assert renderer.frames_from_transitions([]) == [(0.0, {})]


class TestTimeline:
    def test_marks_render(self):
        timeline = ExperimentTimeline()
        timeline.mark(0.0, "start")
        timeline.mark(30.0, "detected")
        timeline.mark(200.0, "done")
        text = timeline.render(width=40)
        assert "start" in text and "detected" in text and "done" in text

    def test_out_of_order_rejected(self):
        timeline = ExperimentTimeline()
        timeline.mark(10.0, "later")
        with pytest.raises(ReproError):
            timeline.mark(5.0, "earlier")

    def test_empty(self):
        assert "empty" in ExperimentTimeline().render()

    def _result(self):
        result = ExperimentResult()
        result.prefix = Prefix.parse("10.0.0.0/23")
        result.victim_asn = 61000
        result.hijacker_asn = 61001
        result.detection_delay = 40.0
        result.announce_delay = 15.0
        result.completion_delay = 150.0
        result.total_time = 205.0
        result.mitigated = True
        result.strategy = "deaggregate"
        result.hijack_fraction_peak = 0.4
        result.per_source_delay = {"ris": 40.0, "bgpmon": 70.0}
        result.ground_truth_series = [(0.0, 1.0), (30.0, 0.6), (205.0, 1.0)]
        result.monitor_series = [(10.0, 1.0), (45.0, 0.5), (200.0, 1.0)]
        return result

    def test_from_result(self):
        timeline = ExperimentTimeline.from_result(self._result())
        assert len(timeline.marks) == 4
        assert timeline.marks[-1][0] == 205.0

    def test_report_contains_key_facts(self):
        report = render_experiment_report(self._result())
        assert "40s" in report
        assert "deaggregate" in report
        assert "ris" in report
        assert "ground truth" in report

    def test_report_handles_undetected_run(self):
        result = ExperimentResult()
        result.prefix = Prefix.parse("10.0.0.0/23")
        report = render_experiment_report(result)
        assert "NOT fully mitigated" in report
