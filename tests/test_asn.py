"""Tests for ASN helpers."""

import pytest

from repro.errors import BGPError
from repro.net.asn import ASN, MAX_ASN, format_as_path, parse_as_path


class TestASN:
    def test_valid(self):
        assert ASN(64500) == 64500
        assert ASN(0) == 0
        assert ASN(MAX_ASN) == MAX_ASN

    def test_repr(self):
        assert repr(ASN(65000)) == "AS65000"

    def test_is_int(self):
        assert isinstance(ASN(1), int)
        assert ASN(2) + 1 == 3

    @pytest.mark.parametrize("bad", [-1, MAX_ASN + 1])
    def test_out_of_range(self, bad):
        with pytest.raises(BGPError):
            ASN(bad)


class TestAsPath:
    def test_parse(self):
        assert parse_as_path("3356 1299 64500") == [3356, 1299, 64500]

    def test_parse_empty(self):
        assert parse_as_path("") == []
        assert parse_as_path("   ") == []

    def test_parse_invalid_token(self):
        with pytest.raises(BGPError):
            parse_as_path("3356 AS1299")

    def test_parse_out_of_range(self):
        with pytest.raises(BGPError):
            parse_as_path(str(MAX_ASN + 1))

    def test_format(self):
        assert format_as_path([3356, 1299, 64500]) == "3356 1299 64500"
        assert format_as_path([]) == ""

    def test_roundtrip(self):
        path = [1, 2, 3, 4_200_000_000]
        assert parse_as_path(format_as_path(path)) == path
