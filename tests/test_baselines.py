"""Tests for operator models, third-party pipelines, and baseline runs."""

import pytest

from repro.baselines.factories import argus_factory, phas_factory, ribdump_factory
from repro.baselines.operator import OperatorModel
from repro.baselines.runner import BaselineExperiment
from repro.baselines.thirdparty import ArgusBaseline, PhasBaseline, ThirdPartyPipeline
from repro.core.config import ArtemisConfig, OwnedPrefix
from repro.feeds.events import FeedEvent
from repro.net.prefix import Prefix
from repro.sim.engine import Engine
from repro.sim.latency import Constant
from repro.sim.rng import SeededRNG

from conftest import fast_scenario


def P(text):
    return Prefix.parse(text)


class TestOperatorModel:
    def test_default_means_are_tens_of_minutes(self):
        operator = OperatorModel()
        assert 10 * 60 < operator.mean_reaction < 90 * 60

    def test_prompt_operator_faster(self):
        assert OperatorModel.prompt().mean_reaction < OperatorModel().mean_reaction

    def test_samples_positive(self):
        operator = OperatorModel()
        rng = SeededRNG(1)
        assert operator.sample_verification(rng) > 0
        assert operator.sample_reconfiguration(rng) > 0

    def test_custom_delays(self):
        operator = OperatorModel(
            verification_delay=Constant(60.0),
            reconfiguration_delay=Constant(30.0),
        )
        assert operator.mean_reaction == 90.0


class FakeSource:
    """A push source with the subscribe(callback, prefixes=) protocol."""

    def __init__(self):
        self.callbacks = []

    def subscribe(self, callback, prefixes=None):
        self.callbacks.append(callback)

        class Sub:
            active = True

        return Sub()

    def emit(self, event):
        for callback in self.callbacks:
            callback(event)


def hijack_event(t=100.0):
    return FeedEvent(
        source="batch", collector="c0", vantage_asn=3, kind="A",
        prefix=P("10.0.0.0/23"), as_path=(3, 666),
        observed_at=t - 1, delivered_at=t,
    )


class TestThirdPartyPipeline:
    def make(self, engine):
        config = ArtemisConfig([OwnedPrefix("10.0.0.0/23", {64500})])
        operator = OperatorModel(
            verification_delay=Constant(120.0),
            reconfiguration_delay=Constant(60.0),
        )
        return ThirdPartyPipeline(engine, config, operator=operator, rng=SeededRNG(1))

    def test_full_human_pipeline_timing(self):
        engine = Engine()
        pipeline = self.make(engine)
        source = FakeSource()
        acted = []
        pipeline.start([source], mitigate=acted.append)
        engine.run_for(100.0)
        source.emit(hijack_event(t=100.0))
        engine.run()
        assert pipeline.detected_at == 100.0
        assert pipeline.verified_at == 220.0
        assert pipeline.mitigation_started_at == 280.0
        assert pipeline.reaction_delay == 180.0
        assert len(acted) == 1

    def test_single_incident_handled_once(self):
        engine = Engine()
        pipeline = self.make(engine)
        source = FakeSource()
        acted = []
        pipeline.start([source], mitigate=acted.append)
        engine.run_for(100.0)
        source.emit(hijack_event(t=100.0))
        engine.run()
        # A different offender later: the pipeline stays focused on the first.
        later = FeedEvent(
            source="batch", collector="c0", vantage_asn=3, kind="A",
            prefix=P("10.0.0.0/23"), as_path=(3, 777),
            observed_at=engine.now, delivered_at=engine.now,
        )
        source.emit(later)
        engine.run()
        assert len(acted) == 1

    def test_legit_event_no_action(self):
        engine = Engine()
        pipeline = self.make(engine)
        source = FakeSource()
        pipeline.start([source], mitigate=lambda a: None)
        legit = FeedEvent(
            source="batch", collector="c0", vantage_asn=3, kind="A",
            prefix=P("10.0.0.0/23"), as_path=(3, 64500),
            observed_at=0.0, delivered_at=0.0,
        )
        source.emit(legit)
        engine.run()
        assert pipeline.alert is None

    def test_argus_uses_prompt_operator(self):
        engine = Engine()
        config = ArtemisConfig([OwnedPrefix("10.0.0.0/23", {64500})])
        argus = ArgusBaseline(engine, config)
        assert argus.operator.mean_reaction < OperatorModel().mean_reaction
        assert argus.name == "argus"


FAST_OPERATOR = OperatorModel(
    verification_delay=Constant(120.0), reconfiguration_delay=Constant(60.0)
)


def fast_phas_factory(experiment, config):
    pipeline = PhasBaseline(
        experiment.network.engine, config,
        operator=FAST_OPERATOR, rng=SeededRNG(experiment.config.seed),
    )
    return pipeline, [experiment.monitors.batch]


class TestBaselineExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return BaselineExperiment(fast_scenario(seed=13), fast_phas_factory).run()

    def test_detection_is_batch_bound(self, result):
        # The 15-minute update file plus fetch delay dominates.
        assert result.detection_delay is not None
        assert result.detection_delay > 25.0

    def test_reaction_is_operator_bound(self, result):
        assert result.reaction_delay == pytest.approx(180.0)

    def test_mitigated_eventually(self, result):
        assert result.mitigated
        assert result.total_time > result.detection_delay + result.reaction_delay

    def test_system_name(self, result):
        assert result.system == "phas"
        assert result.to_dict()["system"] == "phas"

    def test_factories_build(self):
        # Each canned factory constructs against a set-up experiment.
        from repro.testbed.scenario import HijackExperiment

        experiment = HijackExperiment(fast_scenario(seed=14))
        experiment.setup()
        config = ArtemisConfig([OwnedPrefix("10.0.0.0/23", {experiment.victim.asn})])
        for factory, name in [
            (phas_factory, "phas"),
            (ribdump_factory, "rib-dump"),
            (argus_factory, "argus"),
        ]:
            pipeline, sources = factory(experiment, config)
            assert pipeline.name == name
            assert sources
