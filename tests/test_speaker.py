"""Behavioural tests for BGPSpeaker on hand-wired micro-networks."""

import pytest

from repro.bgp.messages import UpdateMessage
from repro.bgp.policy import MaxLengthFilter, Policy, Relationship
from repro.bgp.session import ActivityTracker, Session
from repro.bgp.speaker import BGPSpeaker
from repro.errors import BGPError
from repro.net.prefix import Prefix
from repro.sim.engine import Engine
from repro.sim.latency import Constant
from repro.sim.rng import SeededRNG


def P(text):
    return Prefix.parse(text)


class World:
    """A tiny hand-wired BGP world for tests."""

    def __init__(self):
        self.engine = Engine()
        self.tracker = ActivityTracker()
        self.speakers = {}

    def speaker(self, asn, policy=None, mrai=0.0):
        speaker = BGPSpeaker(
            asn,
            self.engine,
            policy=policy,
            rng=SeededRNG(asn),
            tracker=self.tracker,
            processing_delay=Constant(0.01),
            mrai=Constant(mrai),
        )
        self.speakers[asn] = speaker
        return speaker

    def link(self, a, b, rel_a_to_b, delay=0.01):
        """Connect speakers; ``rel_a_to_b`` is a's view of b."""
        session = Session(
            self.engine,
            self.speakers[a],
            self.speakers[b],
            delay=Constant(delay),
            rng=SeededRNG(a * 1000 + b),
            tracker=self.tracker,
        )
        self.speakers[a].add_peer(session, rel_a_to_b)
        self.speakers[b].add_peer(session, rel_a_to_b.inverse())
        return session

    def converge(self, max_time=600.0):
        while self.tracker.busy:
            if self.engine.peek_time() is None or self.engine.now > max_time:
                raise AssertionError("did not converge")
            self.engine.step()
        return self.engine.now


def chain(*relationships):
    """Speakers 1..n+1 linked in a chain with the given relationships."""
    world = World()
    for asn in range(1, len(relationships) + 2):
        world.speaker(asn)
    for index, rel in enumerate(relationships):
        world.link(index + 1, index + 2, rel)
    return world


class TestPropagation:
    def test_single_hop(self):
        world = chain(Relationship.PROVIDER)  # 1 buys from 2
        world.speakers[1].originate(P("10.0.0.0/23"))
        world.converge()
        route = world.speakers[2].best_route(P("10.0.0.0/23"))
        assert route is not None
        assert route.as_path == (1,)

    def test_multi_hop_path_grows(self):
        world = chain(Relationship.PROVIDER, Relationship.PROVIDER)
        world.speakers[1].originate(P("10.0.0.0/23"))
        world.converge()
        assert world.speakers[3].best_route(P("10.0.0.0/23")).as_path == (2, 1)

    def test_late_peer_gets_full_table(self):
        world = chain(Relationship.PROVIDER)
        world.speakers[1].originate(P("10.0.0.0/23"))
        world.converge()
        late = world.speaker(3)
        world.link(2, 3, Relationship.CUSTOMER)  # 3 is 2's customer... wait
        world.converge()
        assert late.best_route(P("10.0.0.0/23")) is not None

    def test_loop_prevention(self):
        # Triangle of peers: routes should never loop.
        world = World()
        for asn in (1, 2, 3):
            world.speaker(asn)
        world.link(1, 2, Relationship.PEER)
        world.link(2, 3, Relationship.PEER)
        world.link(1, 3, Relationship.PEER)
        world.speakers[1].originate(P("10.0.0.0/23"))
        world.converge()
        for asn in (2, 3):
            route = world.speakers[asn].best_route(P("10.0.0.0/23"))
            # Peer-learned routes are not re-exported to peers, so both
            # neighbors learn the one-hop path only.
            assert route.as_path == (1,)

    def test_withdrawal_propagates(self):
        world = chain(Relationship.PROVIDER, Relationship.PROVIDER)
        world.speakers[1].originate(P("10.0.0.0/23"))
        world.converge()
        world.speakers[1].withdraw_origin(P("10.0.0.0/23"))
        world.converge()
        assert world.speakers[3].best_route(P("10.0.0.0/23")) is None

    def test_implicit_withdraw_replaces_route(self):
        # 3 learns the prefix from both 1 (direct peer) and via 2; when the
        # direct session to 1 goes away, 3 falls back to the longer path.
        world = World()
        for asn in (1, 2, 3):
            world.speaker(asn)
        world.link(1, 2, Relationship.PROVIDER)   # 1 buys from 2
        world.link(2, 3, Relationship.PROVIDER)   # 2 buys from 3
        world.link(1, 3, Relationship.PROVIDER)   # 1 buys from 3 too
        world.speakers[1].originate(P("10.0.0.0/23"))
        world.converge()
        assert world.speakers[3].best_route(P("10.0.0.0/23")).as_path == (1,)
        world.speakers[3].remove_peer(1)
        world.converge()
        assert world.speakers[3].best_route(P("10.0.0.0/23")).as_path == (2, 1)


class TestPolicyEnforcement:
    def test_valley_free_blocks_peer_to_peer_transit(self):
        # 2 peers with both 1 and 3: it must not provide transit between them.
        world = World()
        for asn in (1, 2, 3):
            world.speaker(asn)
        world.link(1, 2, Relationship.PEER)
        world.link(2, 3, Relationship.PEER)
        world.speakers[1].originate(P("10.0.0.0/23"))
        world.converge()
        assert world.speakers[2].best_route(P("10.0.0.0/23")) is not None
        assert world.speakers[3].best_route(P("10.0.0.0/23")) is None

    def test_customer_route_reaches_provider_and_peer(self):
        world = World()
        for asn in (1, 2, 3, 4):
            world.speaker(asn)
        world.link(1, 2, Relationship.PROVIDER)  # 1 customer of 2
        world.link(2, 3, Relationship.PEER)
        world.link(2, 4, Relationship.PROVIDER)  # 2 customer of 4
        world.speakers[1].originate(P("10.0.0.0/23"))
        world.converge()
        assert world.speakers[3].best_route(P("10.0.0.0/23")) is not None
        assert world.speakers[4].best_route(P("10.0.0.0/23")) is not None

    def test_customer_preferred_over_peer(self):
        # 4 hears the prefix from a customer (2, longer path) and from a
        # peer (3, shorter path); customer must win.
        world = World()
        for asn in (1, 2, 3, 4):
            world.speaker(asn)
        world.link(1, 2, Relationship.PROVIDER)
        world.link(1, 3, Relationship.PROVIDER)
        world.link(2, 4, Relationship.PROVIDER)  # 2 is 4's customer
        world.link(3, 4, Relationship.PEER)      # 3 peers with 4... wait
        world.speakers[1].originate(P("10.0.0.0/23"))
        world.converge()
        best = world.speakers[4].best_route(P("10.0.0.0/23"))
        assert best.peer_asn == 2  # via the customer

    def test_import_filter_rejects_long_prefix(self):
        world = World()
        world.speaker(1)
        world.speaker(2, policy=Policy(import_filter=MaxLengthFilter(24)))
        world.link(1, 2, Relationship.PROVIDER)
        world.speakers[1].originate(P("10.0.0.0/25"))
        world.speakers[1].originate(P("10.0.0.0/24"))
        world.converge()
        assert world.speakers[2].best_route(P("10.0.0.0/25")) is None
        assert world.speakers[2].best_route(P("10.0.0.0/24")) is not None


class TestMraiBatching:
    def test_updates_batched_within_mrai(self):
        world = World()
        world.speaker(1, mrai=10.0)
        world.speaker(2)
        world.link(1, 2, Relationship.PROVIDER)
        # Originate many prefixes at once: first flush sends one message,
        # and later originations batch behind the MRAI timer.
        for index in range(5):
            world.speakers[1].originate(P(f"10.0.{index}.0/24"))
        world.converge()
        assert world.speakers[1].updates_sent <= 2
        for index in range(5):
            assert world.speakers[2].best_route(P(f"10.0.{index}.0/24")) is not None

    def test_mrai_delays_second_update(self):
        world = World()
        world.speaker(1, mrai=30.0)
        world.speaker(2)
        world.link(1, 2, Relationship.PROVIDER)
        world.speakers[1].originate(P("10.0.0.0/24"))
        world.converge()
        t_first = world.engine.now
        world.speakers[1].originate(P("10.0.1.0/24"))
        world.converge()
        # Second prefix had to wait for the MRAI window to reopen.
        assert world.engine.now - t_first >= 29.0


class TestMonitors:
    class Sink:
        def __init__(self, asn):
            self.asn = asn
            self.received = []

        def deliver(self, sender_asn, message):
            self.received.append((sender_asn, message))

    def test_monitor_receives_best_routes(self):
        world = chain(Relationship.PROVIDER)
        sink = self.Sink(99999)
        session = Session(
            world.engine,
            world.speakers[2],
            sink,
            delay=Constant(0.01),
            tracker=world.tracker,
        )
        world.speakers[2].add_peer(session, Relationship.MONITOR)
        world.speakers[1].originate(P("10.0.0.0/23"))
        world.converge()
        announced = [
            a.prefix
            for _s, m in sink.received
            for a in m.announcements
        ]
        assert P("10.0.0.0/23") in announced

    def test_monitor_sees_peer_learned_routes_too(self):
        # Valley-free would hide peer routes from peers/providers, but a
        # monitor session must see everything.
        world = World()
        for asn in (1, 2):
            world.speaker(asn)
        world.link(1, 2, Relationship.PEER)
        sink = self.Sink(99998)
        session = Session(
            world.engine, world.speakers[2], sink,
            delay=Constant(0.01), tracker=world.tracker,
        )
        world.speakers[2].add_peer(session, Relationship.MONITOR)
        world.speakers[1].originate(P("10.0.0.0/23"))
        world.converge()
        prefixes = [a.prefix for _s, m in sink.received for a in m.announcements]
        assert P("10.0.0.0/23") in prefixes


class TestErrors:
    def test_duplicate_peer_rejected(self):
        world = World()
        world.speaker(1)
        world.speaker(2)
        session = world.link(1, 2, Relationship.PEER)
        with pytest.raises(BGPError):
            world.speakers[1].add_peer(session, Relationship.PEER)

    def test_remove_unknown_peer(self):
        world = World()
        world.speaker(1)
        with pytest.raises(BGPError):
            world.speakers[1].remove_peer(42)

    def test_withdraw_not_originated(self):
        world = World()
        world.speaker(1)
        with pytest.raises(BGPError):
            world.speakers[1].withdraw_origin(P("10.0.0.0/24"))

    def test_originate_idempotent(self):
        world = World()
        world.speaker(1)
        world.speakers[1].originate(P("10.0.0.0/24"))
        world.speakers[1].originate(P("10.0.0.0/24"))
        assert world.speakers[1].originated_prefixes == [P("10.0.0.0/24")]

    def test_session_to_self_rejected(self):
        world = World()
        speaker = world.speaker(1)
        with pytest.raises(BGPError):
            Session(world.engine, speaker, speaker)


class TestHotPath:
    """The allocation-avoidance machinery must not change observable behaviour."""

    def test_export_announcement_shared_across_peers(self):
        # One origin, one transit, three customers: the transit builds the
        # export announcement once and fans the same object out to everyone.
        world = World()
        for asn in (1, 2, 3, 4):
            world.speaker(asn)
        world.link(1, 2, Relationship.PROVIDER)  # 1 buys from 2
        sinks = []
        for asn in (90001, 90002):
            sink = TestMonitors.Sink(asn)
            session = Session(
                world.engine, world.speakers[2], sink,
                delay=Constant(0.01), tracker=world.tracker,
            )
            world.speakers[2].add_peer(session, Relationship.MONITOR)
            sinks.append(sink)
        world.link(3, 2, Relationship.PROVIDER)
        world.link(4, 2, Relationship.PROVIDER)
        world.speakers[1].originate(P("10.0.0.0/23"))
        world.converge()
        received = [
            a
            for sink in sinks
            for _s, m in sink.received
            for a in m.announcements
            if a.prefix == P("10.0.0.0/23")
        ]
        assert len(received) == 2
        assert received[0] is received[1]  # one object, shared across peers

    def test_route_export_announcement_cached(self):
        from repro.bgp.route import Route

        route = Route(P("10.0.0.0/24"), (7, 8), peer_asn=7, local_pref=100)
        first = route.export_announcement(5)
        assert route.export_announcement(5) is first
        assert first.as_path == (5, 7, 8)
        # A different sender rebuilds rather than serving a stale path.
        other = route.export_announcement(6)
        assert other.as_path == (6, 7, 8)

    def test_peer_route_never_dirties_other_peer(self):
        # Valley-free: 2 can't export a peer-learned route to another peer,
        # so the peer-3 session must never even be marked dirty.
        world = World()
        for asn in (1, 2, 3):
            world.speaker(asn)
        world.link(1, 2, Relationship.PEER)
        world.link(2, 3, Relationship.PEER)
        world.speakers[1].originate(P("10.0.0.0/23"))
        world.converge()
        assert world.speakers[2].best_route(P("10.0.0.0/23")) is not None
        assert not world.speakers[2].peers[3].dirty
        assert not world.speakers[2].peers[3].adj_rib_out
        assert world.speakers[2].updates_sent == 0

    def test_withdraw_still_reaches_peer_with_stale_adj_rib_out(self):
        # The dirty-skip must not swallow withdrawals: once a prefix sits in
        # a peer's Adj-RIB-Out, losing the route must dirty that peer even
        # though neither old nor new best is exportable any more.
        world = World()
        for asn in (1, 2, 3):
            world.speaker(asn)
        world.link(1, 2, Relationship.PROVIDER)  # 1 buys from 2
        world.link(2, 3, Relationship.PROVIDER)  # 2 buys from 3
        world.speakers[1].originate(P("10.0.0.0/23"))
        world.converge()
        assert world.speakers[3].best_route(P("10.0.0.0/23")) is not None
        world.speakers[1].withdraw_origin(P("10.0.0.0/23"))
        world.converge()
        assert world.speakers[3].best_route(P("10.0.0.0/23")) is None
        assert not world.speakers[2].peers[3].adj_rib_out


class TestResolution:
    def test_resolve_origin_prefers_specific(self):
        world = World()
        for asn in (1, 2, 3):
            world.speaker(asn)
        world.link(1, 3, Relationship.PROVIDER)
        world.link(2, 3, Relationship.PROVIDER)
        world.speakers[1].originate(P("10.0.0.0/23"))
        world.speakers[2].originate(P("10.0.0.0/24"))
        world.converge()
        assert world.speakers[3].resolve_origin("10.0.0.5") == 2
        assert world.speakers[3].resolve_origin("10.0.1.5") == 1
        assert world.speakers[3].resolve_origin("99.0.0.1") is None

    def test_resolve_origin_local(self):
        world = World()
        world.speaker(1)
        world.speakers[1].originate(P("10.0.0.0/24"))
        assert world.speakers[1].resolve_origin("10.0.0.1") == 1

    def test_table_dump(self):
        world = chain(Relationship.PROVIDER)
        world.speakers[1].originate(P("10.0.0.0/23"))
        world.converge()
        dump = world.speakers[2].table_dump()
        assert len(dump) == 1
        assert dump[0].prefix == P("10.0.0.0/23")
