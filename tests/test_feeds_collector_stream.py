"""Tests for route collectors and streaming services."""

import pytest

from repro.errors import FeedError
from repro.feeds.bgpmon import BGPMonStream
from repro.feeds.collector import RouteCollector
from repro.feeds.events import FeedEvent
from repro.feeds.ris import RISLiveStream
from repro.feeds.stream import StreamingService
from repro.net.prefix import Prefix
from repro.sim.latency import Constant
from repro.sim.rng import SeededRNG


def P(text):
    return Prefix.parse(text)


class TestFeedEvent:
    def make(self, **kw):
        defaults = dict(
            source="ris",
            collector="rrc00",
            vantage_asn=3,
            kind="A",
            prefix=P("10.0.0.0/23"),
            as_path=(3, 2, 1),
            observed_at=10.0,
            delivered_at=15.0,
        )
        defaults.update(kw)
        return FeedEvent(**defaults)

    def test_fields(self):
        event = self.make()
        assert event.origin_as == 1
        assert event.latency == 5.0
        assert event.is_announcement

    def test_withdraw_event(self):
        event = self.make(kind="W", as_path=())
        assert event.origin_as is None
        assert not event.is_announcement

    def test_invalid_kind(self):
        with pytest.raises(FeedError):
            self.make(kind="X")

    def test_announce_needs_path(self):
        with pytest.raises(FeedError):
            self.make(as_path=())

    def test_time_travel_rejected(self):
        with pytest.raises(FeedError):
            self.make(delivered_at=5.0)


class TestCollector:
    def test_receives_and_records(self, net7):
        collector = RouteCollector("rrc-test", net7.engine)
        collector.register_vantage(3)
        net7.add_monitor_session(3, collector)
        net7.announce(6, "10.0.0.0/23")
        net7.run_until_converged()
        assert collector.observations > 0
        snapshot = collector.rib_snapshot()
        assert any(prefix == P("10.0.0.0/23") for _v, prefix, _p in snapshot)

    def test_withdraw_clears_table(self, net7):
        collector = RouteCollector("rrc-test", net7.engine)
        net7.add_monitor_session(3, collector)
        net7.announce(6, "10.0.0.0/23")
        net7.run_until_converged()
        net7.withdraw(6, "10.0.0.0/23")
        net7.run_until_converged()
        assert collector.rib_snapshot() == []

    def test_observer_callback(self, net7):
        collector = RouteCollector("rrc-test", net7.engine)
        seen = []
        collector.subscribe(
            lambda c, vantage, kind, prefix, path, when: seen.append(
                (vantage, kind, prefix)
            )
        )
        net7.add_monitor_session(3, collector)
        net7.announce(6, "10.0.0.0/23")
        net7.run_until_converged()
        assert (3, "A", P("10.0.0.0/23")) in seen

    def test_duplicate_vantage_rejected(self, net7):
        collector = RouteCollector("rrc-test", net7.engine)
        collector.register_vantage(3)
        with pytest.raises(FeedError):
            collector.register_vantage(3)

    def test_unique_pseudo_asns(self, net7):
        a = RouteCollector("a", net7.engine)
        b = RouteCollector("b", net7.engine)
        assert a.asn != b.asn


class TestStreamingService:
    def _service(self, net, latency=5.0):
        service = StreamingService(net.engine, Constant(latency), SeededRNG(0), "test")
        collector = RouteCollector("c0", net.engine)
        service.attach_collector(collector)
        net.add_monitor_session(3, collector)
        return service

    def test_latency_applied(self, net7):
        service = self._service(net7, latency=5.0)
        events = []
        service.subscribe(events.append)
        net7.announce(6, "10.0.0.0/23")
        net7.run_until_converged()
        net7.run_for(10.0)
        assert events
        assert all(e.latency == 5.0 for e in events)
        assert all(e.source == "test" for e in events)

    def test_prefix_filter(self, net7):
        service = self._service(net7)
        watched, all_events = [], []
        service.subscribe(watched.append, prefixes=[P("10.0.0.0/23")])
        service.subscribe(all_events.append)
        net7.announce(6, "10.0.0.0/23")
        net7.announce(6, "99.0.0.0/16")
        net7.run_until_converged()
        net7.run_for(10.0)
        assert {e.prefix for e in watched} == {P("10.0.0.0/23")}
        assert {e.prefix for e in all_events} == {P("10.0.0.0/23"), P("99.0.0.0/16")}

    def test_filter_matches_overlap_both_directions(self, net7):
        service = self._service(net7)
        events = []
        # Watch a /23: a hijacked more-specific /24 AND a covering /16 both match.
        service.subscribe(events.append, prefixes=[P("10.0.0.0/23")])
        net7.announce(6, "10.0.0.0/24")
        net7.announce(6, "10.0.0.0/16")
        net7.run_until_converged()
        net7.run_for(10.0)
        assert {e.prefix for e in events} == {P("10.0.0.0/24"), P("10.0.0.0/16")}

    def test_unsubscribe(self, net7):
        service = self._service(net7)
        events = []
        subscription = service.subscribe(events.append)
        service.unsubscribe(subscription)
        net7.announce(6, "10.0.0.0/23")
        net7.run_until_converged()
        net7.run_for(10.0)
        assert events == []

    def test_no_subscriber_no_publication_machinery(self, net7):
        service = self._service(net7)
        net7.announce(6, "10.0.0.0/23")
        net7.run_until_converged()
        assert service.events_published > 0
        assert service.events_delivered == 0

    def test_double_attach_rejected(self, net7):
        service = StreamingService(net7.engine, Constant(1.0))
        collector = RouteCollector("c1", net7.engine)
        service.attach_collector(collector)
        with pytest.raises(FeedError):
            service.attach_collector(collector)


class TestDeployHelpers:
    def test_ris_deploy_round_robins_collectors(self, net7):
        service = RISLiveStream.deploy(net7, [1, 2, 3, 4], collectors=2, seed=0)
        assert len(service.collectors) == 2
        sizes = sorted(len(c.vantage_asns) for c in service.collectors)
        assert sizes == [2, 2]

    def test_bgpmon_deploy_single_collector(self, net7):
        service = BGPMonStream.deploy(net7, [1, 2, 3], seed=0)
        assert len(service.collectors) == 1
        assert service.collectors[0].vantage_asns == [1, 2, 3]

    def test_deployed_stream_sees_announcements(self, net7):
        service = RISLiveStream.deploy(net7, [1, 2], seed=0, latency=Constant(1.0))
        events = []
        service.subscribe(events.append, prefixes=[P("10.0.0.0/23")])
        net7.announce(6, "10.0.0.0/23")
        net7.run_until_converged()
        net7.run_for(5.0)
        assert {e.vantage_asn for e in events} == {1, 2}
