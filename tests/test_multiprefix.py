"""Multi-prefix and multi-origin (MOAS/anycast) ARTEMIS behaviour."""

import pytest

from repro.core.artemis import Artemis
from repro.core.config import ArtemisConfig, OwnedPrefix
from repro.feeds.ris import RISLiveStream
from repro.net.prefix import Prefix
from repro.sdn.controller import BGPController
from repro.sim.latency import Constant
from repro.sim.rng import SeededRNG


def P(text):
    return Prefix.parse(text)


@pytest.fixture
def world(net7):
    """AS6 owns two prefixes; ARTEMIS over a 2-vantage RIS stream."""
    stream = RISLiveStream.deploy(net7, [4, 5], seed=0, latency=Constant(1.0))
    controller = BGPController(
        net7.engine, [net7.speaker(6)],
        programming_delay=Constant(10.0), rng=SeededRNG(1),
    )
    config = ArtemisConfig(
        [
            OwnedPrefix("10.0.0.0/23", {6}),
            OwnedPrefix("10.8.0.0/22", {6}),
        ]
    )
    artemis = Artemis(config, controller, sources=[stream])
    artemis.start()
    net7.announce(6, "10.0.0.0/23")
    net7.announce(6, "10.8.0.0/22")
    net7.run_until_converged()
    net7.run_for(10.0)
    return net7, artemis


class TestMultiPrefix:
    def test_both_prefixes_protected_independently(self, world):
        net, artemis = world
        net.announce(7, "10.0.0.0/23")
        net.run_until_converged()
        net.run_for(15.0)
        assert len(artemis.alerts) == 1
        assert artemis.alerts[0].owned_prefix == P("10.0.0.0/23")
        # Second incident against the other prefix → separate alert+action.
        net.announce(7, "10.8.0.0/22")
        net.run_until_converged()
        net.run_for(15.0)
        assert len(artemis.alerts) == 2
        owned = {alert.owned_prefix for alert in artemis.alerts}
        assert owned == {P("10.0.0.0/23"), P("10.8.0.0/22")}
        assert len(artemis.actions) == 2

    def test_mitigations_target_their_own_prefix(self, world):
        net, artemis = world
        net.announce(7, "10.8.0.0/22")
        net.run_until_converged()
        net.run_for(30.0)
        net.run_until_converged()
        action = artemis.actions[0]
        assert action.prefixes == [P("10.8.0.0/23"), P("10.8.2.0/23")]
        # The unrelated owned prefix is untouched.
        assert not net.speaker(6).originates(P("10.0.0.0/24"))


class TestAnycastMOAS:
    def test_second_legit_origin_never_alerts(self, net7):
        # Anycast: both AS6 and AS7 legitimately originate the prefix.
        stream = RISLiveStream.deploy(net7, [4, 5], seed=0, latency=Constant(1.0))
        controller = BGPController(net7.engine, [net7.speaker(6)])
        config = ArtemisConfig([OwnedPrefix("10.0.0.0/23", {6, 7})])
        artemis = Artemis(config, controller, sources=[stream])
        artemis.start()
        net7.announce(6, "10.0.0.0/23")
        net7.run_until_converged()
        net7.announce(7, "10.0.0.0/23")  # the second anycast site, not a hijack
        net7.run_until_converged()
        net7.run_for(30.0)
        assert artemis.alerts == []
        # Monitoring counts both origins as legitimate.
        assert artemis.monitoring.fraction_legitimate(P("10.0.0.0/23")) == 1.0

    def test_third_origin_still_caught(self, net7):
        stream = RISLiveStream.deploy(net7, [3, 4, 5], seed=0, latency=Constant(1.0))
        controller = BGPController(net7.engine, [net7.speaker(6)])
        config = ArtemisConfig(
            [OwnedPrefix("10.0.0.0/23", {6, 7})], auto_mitigate=False
        )
        artemis = Artemis(config, controller, sources=[stream])
        artemis.start()
        net7.announce(6, "10.0.0.0/23")
        net7.run_until_converged()
        net7.announce(5, "10.0.0.0/23")  # a transit AS squats the prefix
        net7.run_until_converged()
        net7.run_for(30.0)
        assert len(artemis.alerts) == 1
        assert artemis.alerts[0].offender_asn == 5
