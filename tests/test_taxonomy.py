"""The full-taxonomy regression matrix: attacker class × detection rule.

One end-to-end :class:`~repro.testbed.scenario.HijackExperiment` per
attacker class on the pinned fast world (seed 11), shared module-wide.
Each class asserts:

* the **exact rule** that must catch it (alert type and offender);
* a **latency bound** on the detection delay;
* a **golden digest** over the cell's canonical outcome (alert type,
  offender, full-precision delay, peak adoption, mitigation) — any drift
  in the world, the rules, or the harness shows up as a digest change;
* the **rule-config matrix**: replaying the alert's founding evidence
  through DetectionService variants proves the verdict comes from the
  matching rule (disable it → silent) and reacts to corroboration the
  way the taxonomy says it must.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from conftest import fast_scenario
from repro.core.config import ArtemisConfig
from repro.core.detection import DetectionService
from repro.eval.taxonomy import TAXONOMY
from repro.testbed.scenario import HijackExperiment

SEED = 11

#: Per-class detection-delay ceiling (simulated seconds).  Stream feeds
#: catch most classes in under ten seconds; type-2 and route-leak need a
#: vantage whose *best path* actually shifted, which can take a poll cycle.
LATENCY_BOUND = {
    "type-0": 10.0,
    "type-1": 10.0,
    "type-2": 60.0,
    "type-U": 10.0,
    "squatting": 10.0,
    "route-leak": 60.0,
}

_CACHE = {}


def run_class(hijack_type):
    """One experiment per class per test session (cells share the run)."""
    if hijack_type not in _CACHE:
        experiment = HijackExperiment(
            fast_scenario(seed=SEED, hijack_type=hijack_type)
        )
        result = experiment.run()
        _CACHE[hijack_type] = (experiment, result)
    return _CACHE[hijack_type]


def cell_digest(hijack_type, result):
    payload = {
        "hijack_type": hijack_type,
        "alert_type": result.alert_type,
        "detection_delay": repr(result.detection_delay),
        "hijack_fraction_peak": repr(result.hijack_fraction_peak),
        "mitigated": result.mitigated,
    }
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()[:16]


#: Golden digests for every matrix cell (seed 11 fast world).  On an
#: intentional behavior change, re-pin from the failing assertion message,
#: which carries the observed digest and the cell's raw outcome.
GOLDEN = {
    "type-0": "2d7994f323c34964",
    "type-1": "fe4f5ef79e0ff444",
    "type-2": "ef1e17684b0796b1",
    "type-U": "57045a7cbf279e33",
    "squatting": "2334944f17e98b2a",
    "route-leak": "64a28657443362a2",
}


@pytest.mark.parametrize("hijack_type", list(TAXONOMY))
class TestTaxonomyMatrix:
    def test_expected_rule_fires(self, hijack_type):
        _, result = run_class(hijack_type)
        assert result.alert_type == TAXONOMY[hijack_type]

    def test_latency_bound(self, hijack_type):
        _, result = run_class(hijack_type)
        assert result.detection_delay is not None
        assert 0.0 < result.detection_delay <= LATENCY_BOUND[hijack_type]

    def test_mitigated(self, hijack_type):
        experiment, result = run_class(hijack_type)
        assert result.mitigated
        assert result.hijack_fraction_peak > 0.0
        # The offender recorded on the result is the attacking AS the
        # scenario actually used (the leaker for route-leak).
        if hijack_type == "route-leak":
            assert result.hijacker_asn == experiment.leaker_asn
        else:
            assert result.hijacker_asn == experiment.hijacker.asn

    def test_golden_digest(self, hijack_type):
        _, result = run_class(hijack_type)
        digest = cell_digest(hijack_type, result)
        assert digest == GOLDEN[hijack_type], (
            f"taxonomy cell drifted: {hijack_type} digest {digest} "
            f"(alert={result.alert_type} delay={result.detection_delay!r})"
        )


# ------------------------------------------------------- rule-config matrix


def variant_config(base: ArtemisConfig, **overrides) -> ArtemisConfig:
    """Rebuild the experiment's ARTEMIS config with some rules changed."""
    params = dict(
        owned=base.owned,
        owned_space=base.owned_space,
        adjacencies=base.adjacencies,
        leak_sentinels=base.leak_sentinels,
        detect_subprefix=base.detect_subprefix,
        detect_path=base.detect_path,
        detect_squatting=base.detect_squatting,
        detect_unchanged_path=base.detect_unchanged_path,
        auto_mitigate=False,
    )
    params.update(overrides)
    return ArtemisConfig(**params)


def reclassify(experiment, probe=None, **overrides):
    """Replay the first alert's founding evidence through a rule variant."""
    service = DetectionService(variant_config(experiment.artemis.config, **overrides))
    if probe is not None:
        service.attach_corroborator(probe)
    evidence = experiment.artemis.alerts[0].evidence[0]
    return service.classify(evidence)


class TestRuleConfigMatrix:
    """Disable the matching rule → the class goes undetected; the
    corroboration column behaves per the taxonomy (gated vs never-gated)."""

    def test_type0_gated_by_healthy_probe(self):
        experiment, _ = run_class("type-0")
        assert reclassify(experiment) is not None
        assert reclassify(experiment, probe=lambda p: True) is None

    def test_type1_needs_detect_path(self):
        experiment, _ = run_class("type-1")
        verdict = reclassify(experiment)
        assert verdict is not None and verdict[0].value == "path"
        assert reclassify(experiment, detect_path=False) is None
        assert reclassify(experiment, probe=lambda p: True) is None

    def test_type2_needs_adjacencies(self):
        experiment, _ = run_class("type-2")
        verdict = reclassify(experiment)
        assert verdict is not None and verdict[0].value == "path-n"
        assert reclassify(experiment, adjacencies=None) is None
        assert reclassify(experiment, probe=lambda p: True) is None

    def test_typeU_needs_probe_and_flag(self):
        experiment, _ = run_class("type-U")
        # Without a data-plane probe the control plane is clean: silent.
        assert reclassify(experiment) is None
        verdict = reclassify(experiment, probe=lambda p: False)
        assert verdict is not None and verdict[0].value == "unchanged-path"
        assert (
            reclassify(experiment, probe=lambda p: False, detect_unchanged_path=False)
            is None
        )

    def test_squatting_needs_flag_and_is_never_gated(self):
        experiment, _ = run_class("squatting")
        verdict = reclassify(experiment)
        assert verdict is not None and verdict[0].value == "squatting"
        assert reclassify(experiment, detect_squatting=False) is None
        # Never gated: a healthy probe cannot silence squatting.
        verdict = reclassify(experiment, probe=lambda p: True)
        assert verdict is not None and verdict[0].value == "squatting"

    def test_route_leak_needs_sentinels_and_is_never_gated(self):
        experiment, _ = run_class("route-leak")
        verdict = reclassify(experiment)
        assert verdict is not None and verdict[0].value == "route-leak"
        assert verdict[2] == experiment.leaker_asn
        assert reclassify(experiment, leak_sentinels=None) is None
        verdict = reclassify(experiment, probe=lambda p: True)
        assert verdict is not None and verdict[0].value == "route-leak"
