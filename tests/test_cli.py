"""Tests for the command-line interface (driving main() in-process)."""

import json

import pytest

from repro.cli import build_parser, main

FAST_WORLD = [
    "--tier1", "3", "--tier2", "10", "--stubs", "25", "--no-churn",
]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fly"])

    def test_experiment_defaults(self):
        args = build_parser().parse_args(["experiment"])
        assert args.seed == 1
        assert args.prefix == "10.0.0.0/23"
        assert not args.forge_origin

    def test_baseline_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["baselines", "--systems", "voodoo"])


class TestCommands:
    def test_topology(self, tmp_path, capsys):
        out = str(tmp_path / "topo.txt")
        assert main(["topology", "--tier1", "3", "--tier2", "5", "--stubs", "8", out]) == 0
        content = open(out).read()
        assert "|-1" in content
        assert "16 ASes" in capsys.readouterr().out

    def test_experiment_json(self, tmp_path, capsys):
        out = str(tmp_path / "result.json")
        code = main(["experiment", "--seed", "2", "--json", out] + FAST_WORLD)
        assert code == 0
        text = capsys.readouterr().out
        assert "detection delay" in text
        payload = json.loads(open(out).read())
        assert payload["seed"] == 2
        assert payload["mitigated"] is True

    def test_suite(self, tmp_path, capsys):
        out = str(tmp_path / "suite.json")
        code = main(["suite", "--runs", "2", "--json", out] + FAST_WORLD)
        assert code == 0
        text = capsys.readouterr().out
        assert "timings over 2 experiments" in text
        assert len(json.loads(open(out).read())) == 2

    def test_demo_frames(self, tmp_path, capsys):
        out = str(tmp_path / "frames.json")
        code = main(
            ["demo", "--seed", "2", "--frames", "3", "--json", out] + FAST_WORLD
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "O=legit" in text
        payload = json.loads(open(out).read())
        assert payload["frames"]

    def test_forged_experiment(self, capsys):
        code = main(["experiment", "--seed", "11", "--forge-origin"] + FAST_WORLD)
        assert code == 0
        assert "detection delay" in capsys.readouterr().out


class TestProfileAndJobs:
    def test_profile_prints_counter_table(self, capsys):
        code = main(["experiment", "--seed", "2", "--profile"] + FAST_WORLD)
        assert code == 0
        text = capsys.readouterr().out
        assert "perf counters" in text
        assert "events processed" in text
        assert "events / sec" in text

    def test_no_profile_no_counter_table(self, capsys):
        code = main(["experiment", "--seed", "2"] + FAST_WORLD)
        assert code == 0
        assert "perf counters" not in capsys.readouterr().out

    def test_profile_json_experiment(self, tmp_path):
        out = str(tmp_path / "profile.json")
        code = main(
            ["experiment", "--seed", "2", "--profile-json", out] + FAST_WORLD
        )
        assert code == 0
        payload = json.loads(open(out).read())
        assert payload["command"] == "experiment"
        assert payload["elapsed_seconds"] > 0
        assert payload["counters"]["events_processed"] > 0
        assert payload["counters"]["updates_processed"] > 0
        walls = payload["phase_walls"]
        assert set(walls) == {"setup", "phase1", "phase2", "phase3"}
        assert all(seconds >= 0 for seconds in walls.values())

    def test_profile_json_suite_merges_workers(self, tmp_path):
        out = str(tmp_path / "profile.json")
        code = main(
            ["suite", "--runs", "2", "--jobs", "2", "--profile-json", out]
            + FAST_WORLD
        )
        assert code == 0
        payload = json.loads(open(out).read())
        assert payload["command"] == "suite"
        # Worker counters are merged back into the parent's totals.
        assert payload["counters"]["events_processed"] > 0
        # Suite phase walls are summed across the runs.
        assert payload["phase_walls"]["phase1"] > 0

    def test_suite_jobs_flag(self, tmp_path, capsys):
        out = str(tmp_path / "suite.json")
        code = main(
            ["suite", "--runs", "2", "--jobs", "2", "--json", out] + FAST_WORLD
        )
        assert code == 0
        assert "timings over 2 experiments" in capsys.readouterr().out
        assert len(json.loads(open(out).read())) == 2

    def test_jobs_default_is_serial(self):
        args = build_parser().parse_args(["suite"])
        assert args.jobs == 1
