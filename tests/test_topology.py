"""Tests for the AS graph, generator, geo embedding, and serialisation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bgp.policy import Relationship
from repro.errors import TopologyError
from repro.topology.generator import GeneratorConfig, generate_internet
from repro.topology.geo import (
    REGIONS,
    Region,
    great_circle_km,
    propagation_floor_seconds,
    region_by_name,
    session_delay_between,
)
from repro.topology.graph import ASGraph
from repro.topology.serial import from_caida_lines, to_caida_lines


class TestASGraph:
    def test_add_and_lookup(self):
        graph = ASGraph()
        graph.add_as(1, tier=1)
        assert 1 in graph
        assert graph.node(1).tier == 1
        assert len(graph) == 1

    def test_duplicate_as_rejected(self):
        graph = ASGraph()
        graph.add_as(1)
        with pytest.raises(TopologyError):
            graph.add_as(1)

    def test_unknown_as_rejected(self):
        with pytest.raises(TopologyError):
            ASGraph().node(5)

    def test_links_and_neighbors(self):
        graph = ASGraph()
        for asn in (1, 2, 3):
            graph.add_as(asn)
        graph.add_customer_provider(customer=2, provider=1)
        graph.add_peering(2, 3)
        assert graph.providers_of(2) == [1]
        assert graph.customers_of(1) == [2]
        assert graph.peers_of(2) == [3]
        assert graph.neighbors(2) == [
            (1, Relationship.PROVIDER),
            (3, Relationship.PEER),
        ]
        assert graph.degree(2) == 2

    def test_self_link_rejected(self):
        graph = ASGraph()
        graph.add_as(1)
        with pytest.raises(TopologyError):
            graph.add_peering(1, 1)

    def test_double_link_rejected(self):
        graph = ASGraph()
        graph.add_as(1)
        graph.add_as(2)
        graph.add_customer_provider(1, 2)
        with pytest.raises(TopologyError):
            graph.add_peering(1, 2)
        assert graph.linked(1, 2)
        assert graph.linked(2, 1)

    def test_links_yield_each_once(self):
        graph = ASGraph()
        for asn in (1, 2, 3):
            graph.add_as(asn)
        graph.add_customer_provider(2, 1)
        graph.add_peering(2, 3)
        links = list(graph.links())
        assert len(links) == 2 == graph.link_count()
        assert (2, 1, Relationship.PROVIDER) in links
        assert (2, 3, Relationship.PEER) in links

    def test_stubs_and_tier1(self):
        graph = ASGraph()
        for asn in (1, 2, 3):
            graph.add_as(asn)
        graph.add_customer_provider(2, 1)
        graph.add_customer_provider(3, 2)
        assert graph.tier1() == [1]
        assert graph.stubs() == [3]

    def test_copy_is_independent_and_equal(self):
        graph = generate_internet(
            GeneratorConfig(num_tier1=3, num_tier2=6, num_stubs=12), seed=3
        )
        clone = graph.copy()
        assert clone.asns() == graph.asns()
        assert sorted(clone.links()) == sorted(graph.links())
        for asn in graph.asns():
            original = graph.node(asn)
            copied = clone.node(asn)
            assert (copied.tier, copied.region) == (original.tier, original.region)
            assert copied.tags == original.tags
            assert copied is not original
        # Mutating the copy (new AS, new link, tag edit) leaves the
        # original untouched.
        clone.add_as(64000, tier=3)
        clone.add_customer_provider(64000, clone.tier1()[0])
        clone.node(graph.asns()[0]).tags.add("mutated")
        assert 64000 not in graph
        assert "mutated" not in graph.node(graph.asns()[0]).tags
        assert len(clone) == len(graph) + 1

    def test_validate_detects_provider_cycle(self):
        graph = ASGraph()
        for asn in (1, 2, 3):
            graph.add_as(asn)
        graph.add_customer_provider(1, 2)
        graph.add_customer_provider(2, 3)
        graph.add_customer_provider(3, 1)
        with pytest.raises(TopologyError, match="cycle"):
            graph.validate()

    def test_validate_detects_disconnection(self):
        graph = ASGraph()
        for asn in (1, 2, 3, 4):
            graph.add_as(asn)
        graph.add_peering(1, 2)
        graph.add_peering(3, 4)
        with pytest.raises(TopologyError, match="disconnected"):
            graph.validate()

    def test_validate_accepts_valid(self):
        graph = ASGraph()
        for asn in (1, 2, 3):
            graph.add_as(asn)
        graph.add_peering(1, 2)
        graph.add_customer_provider(3, 1)
        graph.validate()


class TestGenerator:
    def test_size(self):
        config = GeneratorConfig(num_tier1=4, num_tier2=10, num_stubs=30)
        graph = generate_internet(config, seed=1)
        assert len(graph) == 44

    def test_deterministic(self):
        config = GeneratorConfig(num_tier1=4, num_tier2=10, num_stubs=30)
        a = generate_internet(config, seed=9)
        b = generate_internet(config, seed=9)
        assert list(a.links()) == list(b.links())

    def test_seed_changes_graph(self):
        config = GeneratorConfig(num_tier1=4, num_tier2=10, num_stubs=30)
        a = generate_internet(config, seed=1)
        b = generate_internet(config, seed=2)
        assert list(a.links()) != list(b.links())

    def test_tier1_clique(self):
        graph = generate_internet(GeneratorConfig(num_tier1=5, num_tier2=5, num_stubs=5), seed=0)
        tier1 = [n.asn for n in graph.nodes() if n.tier == 1]
        assert len(tier1) == 5
        for i, a in enumerate(tier1):
            for b in tier1[i + 1:]:
                assert b in graph.peers_of(a)

    def test_every_non_tier1_has_provider(self):
        graph = generate_internet(GeneratorConfig(num_tier1=3, num_tier2=8, num_stubs=20), seed=3)
        for node in graph.nodes():
            if node.tier > 1:
                assert graph.providers_of(node.asn)

    def test_regions_assigned(self):
        graph = generate_internet(GeneratorConfig(num_tier1=3, num_tier2=5, num_stubs=5), seed=0)
        assert all(node.region is not None for node in graph.nodes())

    def test_invalid_configs(self):
        with pytest.raises(TopologyError):
            GeneratorConfig(num_tier1=0)
        with pytest.raises(TopologyError):
            GeneratorConfig(min_providers_stub=0)
        with pytest.raises(TopologyError):
            GeneratorConfig(min_providers_tier2=3, max_providers_tier2=2)
        with pytest.raises(TopologyError):
            GeneratorConfig(tier2_peering_prob=1.5)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_generated_graphs_always_validate(self, seed):
        config = GeneratorConfig(num_tier1=3, num_tier2=6, num_stubs=12)
        graph = generate_internet(config, seed=seed)
        graph.validate()  # does not raise


class TestGeo:
    def test_region_lookup(self):
        assert region_by_name("athens").continent == "europe"
        with pytest.raises(TopologyError):
            region_by_name("atlantis")

    def test_invalid_coordinates(self):
        with pytest.raises(TopologyError):
            Region("bad", 91.0, 0.0, "x")
        with pytest.raises(TopologyError):
            Region("bad", 0.0, 181.0, "x")

    def test_great_circle_sanity(self):
        ams = region_by_name("amsterdam")
        fra = region_by_name("frankfurt")
        syd = region_by_name("sydney")
        near = great_circle_km(ams, fra)
        far = great_circle_km(ams, syd)
        assert 300 < near < 500        # ≈ 365 km
        assert 15000 < far < 18000     # ≈ 16 650 km
        assert great_circle_km(ams, ams) == 0.0

    def test_propagation_floor(self):
        ams = region_by_name("amsterdam")
        syd = region_by_name("sydney")
        assert propagation_floor_seconds(ams, syd) > 0.08  # >80 ms one way
        assert propagation_floor_seconds(ams, ams) >= 0.001
        assert propagation_floor_seconds(None, ams) == 0.030

    def test_session_delay_positive(self):
        from repro.sim.rng import SeededRNG

        delay = session_delay_between(region_by_name("tokyo"), region_by_name("london"))
        rng = SeededRNG(0)
        samples = [delay.sample(rng) for _ in range(50)]
        floor = propagation_floor_seconds(
            region_by_name("tokyo"), region_by_name("london")
        )
        assert all(s >= floor for s in samples)

    def test_default_regions_unique(self):
        names = [r.name for r in REGIONS]
        assert len(names) == len(set(names))


class TestSerial:
    def test_roundtrip(self):
        graph = generate_internet(GeneratorConfig(num_tier1=3, num_tier2=6, num_stubs=12), seed=4)
        lines = list(to_caida_lines(graph))
        parsed = from_caida_lines(lines)
        assert len(parsed) == len(graph)
        assert sorted((a, b, r.value) for a, b, r in parsed.links()) == sorted(
            (a, b, r.value) for a, b, r in graph.links()
        )

    def test_tier_inference(self):
        lines = ["1|2|-1", "2|3|-1"]  # 1 provides to 2, 2 provides to 3
        graph = from_caida_lines(lines)
        assert graph.node(1).tier == 1
        assert graph.node(2).tier == 2
        assert graph.node(3).tier == 3

    def test_comments_and_blanks_skipped(self):
        graph = from_caida_lines(["# comment", "", "1|2|0"])
        assert len(graph) == 2

    @pytest.mark.parametrize("bad", ["1|2", "a|2|-1", "1|2|7"])
    def test_parse_errors(self, bad):
        with pytest.raises(TopologyError):
            from_caida_lines([bad])

    def test_file_roundtrip(self, tmp_path):
        from repro.topology.serial import load_caida, save_caida

        graph = generate_internet(GeneratorConfig(num_tier1=3, num_tier2=5, num_stubs=8), seed=2)
        path = str(tmp_path / "as-rel.txt")
        save_caida(graph, path)
        loaded = load_caida(path)
        assert len(loaded) == len(graph)
