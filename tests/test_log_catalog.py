"""Tests for the incident log and the hijack-event catalog."""

import json

import pytest

from repro.core.log import IncidentLog
from repro.errors import ExperimentError
from repro.eval.catalog import HijackEvent, HijackEventCatalog
from repro.sim.rng import SeededRNG
from repro.testbed.scenario import HijackExperiment

from conftest import fast_scenario


class TestIncidentLog:
    @pytest.fixture(scope="class")
    def experiment_and_log(self):
        experiment = HijackExperiment(fast_scenario(seed=11))
        experiment.setup()
        log = IncidentLog(experiment.artemis)
        result = experiment.run()
        return experiment, log, result

    def test_alert_logged(self, experiment_and_log):
        _experiment, log, _result = experiment_and_log
        alerts = [e for e in log.entries if e["event"] == "alert"]
        assert len(alerts) == 1
        entry = alerts[0]
        assert entry["type"] == "exact-origin"
        assert entry["owned_prefix"] == "10.0.0.0/23"
        assert entry["first_source"] in ("ris", "bgpmon", "periscope")

    def test_mitigation_logged_after_alert(self, experiment_and_log):
        _experiment, log, _result = experiment_and_log
        kinds = [e["event"] for e in log.entries]
        assert kinds.index("alert") < kinds.index("mitigation-announced")
        action_entry = next(
            e for e in log.entries if e["event"] == "mitigation-announced"
        )
        assert action_entry["strategy"] == "deaggregate"
        assert len(action_entry["prefixes"]) == 2

    def test_resolution_recordable(self, experiment_and_log):
        experiment, log, _result = experiment_and_log
        alert = experiment.artemis.alerts[0]
        log.record_resolution(alert)
        assert log.entries[-1]["event"] == "resolved"

    def test_for_alert_filters(self, experiment_and_log):
        experiment, log, _result = experiment_and_log
        alert_id = experiment.artemis.alerts[0].id
        entries = log.for_alert(alert_id)
        assert entries and all(e["alert_id"] == alert_id for e in entries)

    def test_json_and_text_render(self, experiment_and_log):
        _experiment, log, _result = experiment_and_log
        payload = json.loads(log.to_json())
        assert isinstance(payload, list) and payload
        text = log.to_text()
        assert "ALERT" in text and "MITIGATE" in text


class TestHijackEvent:
    def test_end(self):
        event = HijackEvent(100.0, 50.0, "exact-origin")
        assert event.end == 150.0


class TestCatalog:
    @pytest.fixture(scope="class")
    def catalog(self):
        return HijackEventCatalog.generate(seed=1, horizon_days=30, events_per_day=10)

    def test_event_count_near_rate(self, catalog):
        assert 200 <= len(catalog) <= 400  # Poisson around 300

    def test_sorted_by_start(self, catalog):
        starts = [e.start for e in catalog.events]
        assert starts == sorted(starts)
        assert all(0 <= s < catalog.horizon for s in starts)

    def test_type_mix(self, catalog):
        counts = catalog.count_by_kind()
        assert set(counts) == {"exact-origin", "sub-prefix", "path"}
        assert counts["exact-origin"] > counts["path"]

    def test_duration_anchor(self, catalog):
        # >20% of events last under 10 minutes (the Argus statistic).
        assert catalog.fraction_shorter_than(600) > 0.15

    def test_coverage_monotone_in_response_time(self, catalog):
        fast = catalog.coverage(6 * 60)
        slow = catalog.coverage(80 * 60)
        assert fast > slow
        assert fast > 0.75

    def test_exposure_grows_with_response_time(self, catalog):
        assert catalog.exposure_seconds(60) < catalog.exposure_seconds(3600)

    def test_concurrent_at(self, catalog):
        mid = catalog.horizon / 2
        assert catalog.concurrent_at(mid) >= 0

    def test_deterministic(self):
        a = HijackEventCatalog.generate(seed=5, horizon_days=5)
        b = HijackEventCatalog.generate(seed=5, horizon_days=5)
        assert [(e.start, e.duration, e.kind) for e in a.events] == [
            (e.start, e.duration, e.kind) for e in b.events
        ]

    def test_validation(self):
        with pytest.raises(ExperimentError):
            HijackEventCatalog.generate(horizon_days=0)
        with pytest.raises(ExperimentError):
            HijackEventCatalog.generate(events_per_day=-1)
        with pytest.raises(ExperimentError):
            HijackEventCatalog.generate(type_mix={"exact-origin": 0.0})

    def test_empty_catalog(self):
        catalog = HijackEventCatalog([], horizon=1000.0)
        assert catalog.coverage(60) == 0.0
        assert catalog.fraction_shorter_than(60) == 0.0
