"""Tests for the process-wide perf counters (:mod:`repro.perf`)."""

import pytest

from repro.perf import (
    COUNTERS,
    FIELDS,
    GAUGES,
    PerfCounters,
    format_profile,
    profile_rows,
)
from repro.sim.engine import Engine


class TestPerfCounters:
    def test_starts_at_zero(self):
        counters = PerfCounters()
        assert all(value == 0 for value in counters.as_dict().values())

    def test_reset_zeroes_everything(self):
        counters = PerfCounters()
        counters.events_scheduled = 7
        counters.path_intern_hits = 3
        counters.reset()
        assert counters.as_dict() == {field: 0 for field in FIELDS + GAUGES}

    def test_merge_adds_snapshot(self):
        counters = PerfCounters()
        counters.events_processed = 5
        counters.merge({"events_processed": 10, "flushes_run": 2})
        assert counters.events_processed == 15
        assert counters.flushes_run == 2

    def test_merge_ignores_unknown_fields(self):
        counters = PerfCounters()
        counters.merge({"not_a_counter": 99, "updates_processed": 1})
        assert counters.updates_processed == 1
        assert "not_a_counter" not in counters.as_dict()

    def test_merge_takes_max_for_gauges(self):
        counters = PerfCounters()
        counters.peak_rss_kb = 500
        counters.merge({"peak_rss_kb": 300, "checkpoint_bytes": 1024})
        assert counters.peak_rss_kb == 500
        counters.merge({"peak_rss_kb": 900})
        assert counters.peak_rss_kb == 900
        assert counters.checkpoint_bytes == 1024

    def test_delta_since_subtracts_counters_passes_gauges(self):
        counters = PerfCounters()
        counters.events_processed = 10
        counters.peak_rss_kb = 400
        before = counters.as_dict()
        counters.events_processed = 25
        counters.peak_rss_kb = 700
        delta = counters.delta_since(before)
        assert delta["events_processed"] == 15
        assert delta["peak_rss_kb"] == 700

    def test_merge_shard_deltas_sum_counters_max_rss(self):
        """Coordinator fold: worker counter deltas add, RSS gauges race.

        ``ShardRunner.collect_perf`` merges one delta per worker; traffic
        totals must accumulate across shards while the per-process peak-RSS
        gauge takes the worst worker, not the sum.
        """
        counters = PerfCounters()
        counters.merge({
            "cross_shard_messages": 5,
            "cross_shard_bytes": 1000,
            "sync_barrier_stalls": 2,
            "shard_windows": 40,
            "shard_rss_peak_kb": 900,
        })
        counters.merge({
            "cross_shard_messages": 3,
            "cross_shard_bytes": 700,
            "sync_barrier_stalls": 1,
            "shard_windows": 40,
            "shard_rss_peak_kb": 400,
        })
        assert counters.cross_shard_messages == 8
        assert counters.cross_shard_bytes == 1700
        assert counters.sync_barrier_stalls == 3
        assert counters.shard_windows == 80
        assert counters.shard_rss_peak_kb == 900

    def test_tombstone_ratio(self):
        counters = PerfCounters()
        assert counters.tombstone_ratio == 0.0
        counters.events_scheduled = 10
        counters.events_cancelled = 4
        assert counters.tombstone_ratio == pytest.approx(0.4)

    def test_allocations_avoided_sums_cache_wins(self):
        counters = PerfCounters()
        counters.announcements_reused = 1
        counters.path_intern_hits = 2
        counters.prefix_parse_hits = 3
        counters.dirty_marks_skipped = 4
        assert counters.allocations_avoided == 10

    def test_events_per_second(self):
        counters = PerfCounters()
        counters.events_processed = 500
        assert counters.events_per_second(2.0) == pytest.approx(250.0)
        assert counters.events_per_second(0.0) is None


class TestGlobalWiring:
    def test_engine_increments_global_counters(self):
        baseline = COUNTERS.as_dict()
        engine = Engine()
        doomed = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        doomed.cancel()
        engine.run()
        assert COUNTERS.events_scheduled == baseline["events_scheduled"] + 2
        assert COUNTERS.events_processed == baseline["events_processed"] + 1
        assert COUNTERS.events_cancelled == baseline["events_cancelled"] + 1

    def test_profile_rows_cover_all_fields(self):
        names = [name for name, _value in profile_rows()]
        for field in FIELDS + GAUGES:
            assert field.replace("_", " ") in names
        assert "allocations avoided" in names
        assert "queue tombstone ratio" in names

    def test_profile_rows_sample_memory_gauges(self):
        from repro.net.prefix import Prefix

        Prefix.parse("10.99.0.0/16")  # the parse cache is certainly non-empty
        rows = dict(profile_rows())
        assert int(rows["prefix cache size"]) > 0
        # resource.getrusage is available on every platform CI runs on.
        assert int(rows["peak rss kb"]) > 0

    def test_profile_rows_with_wall_time(self):
        names = [name for name, _value in profile_rows(wall_seconds=1.5)]
        assert "wall time (s)" in names
        assert "events / sec" in names

    def test_format_profile_renders_table(self):
        text = format_profile(0.5)
        assert text.startswith("perf counters")
        assert "events processed" in text
        assert "wall time (s)" in text

    def test_design_catalogue_documents_every_counter(self):
        """DESIGN.md's perf-counter catalogue must never drift: every
        field and gauge on COUNTERS appears as `name` in the table."""
        import os

        design = os.path.join(
            os.path.dirname(__file__), os.pardir, "DESIGN.md"
        )
        with open(design, encoding="utf-8") as handle:
            text = handle.read()
        missing = [
            name
            for name in FIELDS + GAUGES
            if f"`{name}`" not in text
        ]
        assert not missing, (
            f"perf counters missing from the DESIGN.md catalogue: {missing}"
        )
