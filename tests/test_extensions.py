"""Tests for the paper-lineage extensions: forged-path (type-1) hijacks,
outsourced mitigation (helper fleet), and subscription-level source ablation."""

import pytest

from repro.bgp.policy import Relationship
from repro.bgp.speaker import BGPSpeaker
from repro.core.config import ArtemisConfig, OwnedPrefix
from repro.core.mitigation import HelperFleet, MitigationService
from repro.errors import BGPError, ExperimentError, MitigationError
from repro.net.prefix import Prefix
from repro.sdn.controller import BGPController
from repro.sim.engine import Engine
from repro.sim.latency import Constant
from repro.sim.rng import SeededRNG
from repro.testbed.scenario import HijackExperiment, ScenarioConfig

from conftest import fast_scenario


def P(text):
    return Prefix.parse(text)


class TestForgedOrigination:
    def test_forged_route_claims_victim_origin(self, net7):
        net7.speaker(7).originate_forged(P("10.0.0.0/23"), (6,))
        net7.run_until_converged()
        # Everyone believes the origin is AS6 — but paths run through AS7.
        for asn in net7.asns():
            if asn in (6, 7):
                continue
            route = net7.speaker(asn).best_route(P("10.0.0.0/23"))
            assert route is not None
            assert route.origin_as == 6
            assert 7 in route.as_path

    def test_victim_discards_via_loop_detection(self, net7):
        net7.speaker(7).originate_forged(P("10.0.0.0/23"), (6,))
        net7.run_until_converged()
        best = net7.speaker(6).best_route(P("10.0.0.0/23"))
        # AS6 sees its own ASN in the path and never accepts the forgery.
        assert best is None or best.is_local

    def test_forged_path_validation(self, net7):
        speaker = net7.speaker(7)
        with pytest.raises(BGPError):
            speaker.originate_forged(P("10.0.0.0/23"), ())
        with pytest.raises(BGPError):
            speaker.originate_forged(P("10.0.0.0/23"), (7, 6))
        speaker.originate_forged(P("10.0.0.0/23"), (6,))
        with pytest.raises(BGPError):
            speaker.originate_forged(P("10.0.0.0/23"), (6,))

    def test_forged_withdrawable(self, net7):
        net7.speaker(7).originate_forged(P("10.0.0.0/23"), (6,))
        net7.run_until_converged()
        net7.speaker(7).withdraw_origin(P("10.0.0.0/23"))
        net7.run_until_converged()
        assert net7.speaker(3).best_route(P("10.0.0.0/23")) is None


class TestForgedScenario:
    @pytest.fixture(scope="class")
    def result(self):
        return HijackExperiment(fast_scenario(seed=11, forge_origin=True)).run()

    def test_detected_as_path_hijack(self, result):
        assert result.alert_type == "path"
        assert result.detection_delay is not None

    def test_mitigated_by_deaggregation(self, result):
        assert result.strategy == "deaggregate"
        assert result.mitigated
        assert result.residual_hijack_fraction == 0.0

    def test_path_infection_observed(self, result):
        assert result.hijack_fraction_peak > 0.0
        assert result.ground_truth_series[0][1] == 1.0
        assert result.ground_truth_series[-1][1] == 1.0


class TestHelperFleet:
    def _fleet(self, engine, asns):
        controllers = [
            BGPController(
                engine,
                [BGPSpeaker(asn, engine, rng=SeededRNG(asn))],
                programming_delay=Constant(5.0),
                rng=SeededRNG(asn),
            )
            for asn in asns
        ]
        return controllers, HelperFleet(
            controllers, coordination_delay=Constant(10.0), rng=SeededRNG(0)
        )

    def test_needs_controllers(self):
        with pytest.raises(MitigationError):
            HelperFleet([])

    def test_helper_asns(self):
        engine = Engine()
        _controllers, fleet = self._fleet(engine, [100, 200])
        assert fleet.helper_asns == [100, 200]

    def test_engage_announces_after_coordination(self):
        engine = Engine()
        controllers, fleet = self._fleet(engine, [100, 200])
        ops = []
        fleet.engage([P("10.0.0.0/24")], ops.append)
        engine.run()
        assert len(ops) == 2
        for controller in controllers:
            router = next(iter(controller.routers.values()))
            assert router.originates(P("10.0.0.0/24"))
        # coordination (10s) + programming (5s)
        assert all(op.completed_at == pytest.approx(15.0) for op in ops)

    def test_disengage_withdraws(self):
        engine = Engine()
        controllers, fleet = self._fleet(engine, [100])
        fleet.engage([P("10.0.0.0/24")], lambda op: None)
        engine.run()
        fleet.disengage([P("10.0.0.0/24")])
        engine.run()
        router = next(iter(controllers[0].routers.values()))
        assert not router.originates(P("10.0.0.0/24"))

    def _alert(self, owned, announced):
        from repro.core.alerts import AlertType, HijackAlert
        from repro.feeds.events import FeedEvent

        event = FeedEvent(
            source="ris", collector="c0", vantage_asn=3, kind="A",
            prefix=P(announced), as_path=(3, 666),
            observed_at=9.0, delivered_at=10.0,
        )
        return HijackAlert(AlertType.EXACT_ORIGIN, P(owned), P(announced), 666, event)

    def test_engaged_only_for_partial_recovery(self):
        engine = Engine()
        controllers, fleet = self._fleet(engine, [100])
        victim = BGPSpeaker(64500, engine, rng=SeededRNG(1))
        controller = BGPController(
            engine, [victim], programming_delay=Constant(1.0), rng=SeededRNG(2)
        )
        config = ArtemisConfig(
            [
                OwnedPrefix("10.0.0.0/23", {64500, 100}),
                OwnedPrefix("10.1.0.0/24", {64500, 100}),
            ]
        )
        service = MitigationService(config, controller, helpers=fleet)
        # /23 → de-aggregation fully recovers: helpers stay out of it.
        action = service.execute(self._alert("10.0.0.0/23", "10.0.0.0/23"))
        engine.run()
        assert not action.helpers_engaged
        helper_router = next(iter(controllers[0].routers.values()))
        assert helper_router.originated_prefixes == []
        # /24 → compete: helpers engaged.
        action24 = service.execute(self._alert("10.1.0.0/24", "10.1.0.0/24"))
        engine.run()
        assert action24.helpers_engaged
        assert helper_router.originates(P("10.1.0.0/24"))


class TestHelperScenario:
    def test_helpers_reduce_residual_on_slash24(self):
        base = fast_scenario(seed=12, prefix="10.0.0.0/24", observation_window=200.0)
        without = HijackExperiment(base).run()
        helped_cfg = fast_scenario(
            seed=12, prefix="10.0.0.0/24", observation_window=200.0, num_helpers=3
        )
        helped = HijackExperiment(helped_cfg).run()
        assert without.strategy == helped.strategy == "compete"
        assert helped.residual_hijack_fraction < without.residual_hijack_fraction

    def test_helpers_engaged_flag(self):
        config = fast_scenario(
            seed=12, prefix="10.0.0.0/24", observation_window=120.0, num_helpers=2
        )
        experiment = HijackExperiment(config)
        experiment.run()
        action = experiment.artemis.actions[0]
        assert action.helpers_engaged
        assert action.helper_ops

    def test_helpers_not_engaged_when_deaggregation_works(self):
        config = fast_scenario(seed=12, num_helpers=2)  # /23: full recovery
        experiment = HijackExperiment(config)
        result = experiment.run()
        assert result.mitigated
        action = experiment.artemis.actions[0]
        assert not action.helpers_engaged

    def test_helper_announcements_not_alerts(self):
        # Helpers are whitelisted origins: their competitive announcements
        # must not raise fresh incidents.
        config = fast_scenario(
            seed=12, prefix="10.0.0.0/24", observation_window=200.0, num_helpers=2
        )
        experiment = HijackExperiment(config)
        experiment.run()
        assert len(experiment.artemis.alerts) == 1


class TestEnabledSources:
    def test_validation(self):
        with pytest.raises(ExperimentError):
            fast_scenario(enabled_sources=("carrier-pigeon",))
        with pytest.raises(ExperimentError):
            fast_scenario(enabled_sources=())

    def test_single_source_still_detects(self):
        config = fast_scenario(seed=11, enabled_sources=("ris",))
        result = HijackExperiment(config).run()
        assert result.detection_delay is not None
        assert set(result.per_source_delay) == {"ris"}

    def test_ablated_world_is_identical_until_mitigation(self):
        # The BGP world must be bit-identical across source ablations right
        # up to the moment the (differently-timed) mitigations fire — the
        # hijack reaches every vantage point at exactly the same instants.
        full = HijackExperiment(fast_scenario(seed=11))
        full_result = full.run()
        ablated = HijackExperiment(
            fast_scenario(seed=11, enabled_sources=("ris", "bgpmon"))
        )
        ablated_result = ablated.run()
        assert full_result.hijack_time == ablated_result.hijack_time
        divergence = full_result.hijack_time + min(
            full_result.detection_delay, ablated_result.detection_delay
        )
        full_flips = [f for f in full.tracker.flips if f[0] < divergence]
        ablated_flips = [f for f in ablated.tracker.flips if f[0] < divergence]
        assert full_flips == ablated_flips
        # Removing a source can only delay the combined detection.
        assert full_result.detection_delay <= ablated_result.detection_delay

    def test_periscope_not_polling_when_disabled(self):
        config = fast_scenario(seed=11, enabled_sources=("ris", "bgpmon"))
        experiment = HijackExperiment(config)
        experiment.run()
        assert experiment.monitors.periscope.queries_sent == 0
