"""Tests for the self-contained HTML visualisation export."""

import json
import re

import pytest

from repro.topology.geo import region_by_name
from repro.topology.graph import ASGraph
from repro.viz.geomap import GeoMapRenderer
from repro.viz.html import render_html, save_html


@pytest.fixture
def renderer():
    graph = ASGraph()
    graph.add_as(1, tier=1, region=region_by_name("amsterdam"))
    graph.add_as(2, tier=2, region=region_by_name("tokyo"))
    graph.add_customer_provider(2, 1)
    return GeoMapRenderer(graph, legit_origins={100})


FRAMES = [
    (0.0, {1: 100, 2: 100}),
    (30.0, {1: 100, 2: 666}),
    (90.0, {1: 100, 2: 100}),
]


class TestRenderHtml:
    def test_is_complete_document(self, renderer):
        html = render_html(renderer, FRAMES)
        assert html.startswith("<!DOCTYPE html>")
        assert "</html>" in html
        assert "<script>" in html

    def test_embeds_frame_data(self, renderer):
        html = render_html(renderer, FRAMES)
        match = re.search(r"const DATA = (\{.*?\});\n", html, re.S)
        assert match, "frame payload missing"
        payload = json.loads(match.group(1))
        assert payload["legit_origins"] == [100]
        assert len(payload["frames"]) == 3
        states = [v["state"] for v in payload["frames"][1]["vantages"]]
        assert "hijacked" in states

    def test_no_external_references(self, renderer):
        html = render_html(renderer, FRAMES)
        assert "http://" not in html.replace("http://www.w3.org/2000/svg", "")
        assert "https://" not in html

    def test_title_and_dimensions(self, renderer):
        html = render_html(renderer, FRAMES, title="My Hijack", width=500, height=250)
        assert "<title>My Hijack</title>" in html
        assert 'width="500"' in html and 'height="250"' in html

    def test_slider_bounds(self, renderer):
        html = render_html(renderer, FRAMES)
        assert 'max="2"' in html

    def test_single_frame(self, renderer):
        html = render_html(renderer, FRAMES[:1])
        assert 'max="0"' in html

    def test_save(self, renderer, tmp_path):
        path = str(tmp_path / "demo.html")
        save_html(path, renderer, FRAMES)
        assert open(path).read().startswith("<!DOCTYPE html>")
