"""Tests for background churn."""

import pytest

from repro.errors import SimulationError
from repro.internet.churn import BackgroundChurn, ChurnConfig
from repro.internet.tracker import OriginTracker
from repro.net.prefix import Prefix


class TestChurnConfig:
    def test_defaults(self):
        config = ChurnConfig()
        assert config.pool_size == 40
        assert config.prefix_pool == Prefix.parse("172.16.0.0/12")

    def test_validation(self):
        with pytest.raises(SimulationError):
            ChurnConfig(pool_size=0)
        with pytest.raises(SimulationError):
            ChurnConfig(event_rate=0)
        with pytest.raises(SimulationError):
            ChurnConfig(announce_bias=1.5)


class TestChurnBehaviour:
    def test_pool_prefixes_inside_pool_range(self, net7):
        churn = BackgroundChurn(net7, ChurnConfig(pool_size=10), seed=1)
        pool = Prefix.parse("172.16.0.0/12")
        assert len(churn.prefixes) == 10
        assert all(pool.contains(p) for p in churn.prefixes)

    def test_homes_are_topology_ases(self, net7):
        churn = BackgroundChurn(net7, ChurnConfig(pool_size=10), seed=1)
        assert all(asn in net7.speakers for asn in churn.home.values())

    def test_events_fire_and_propagate(self, net7):
        churn = BackgroundChurn(net7, ChurnConfig(pool_size=10, event_rate=1.0), seed=1)
        churn.start()
        net7.run_for(30.0)
        assert churn.events_generated > 10
        # Some churn prefix is visible somewhere else in the network.
        visible = 0
        for prefix in churn.prefixes:
            for asn in net7.asns():
                route = net7.speaker(asn).best_route(prefix)
                if route is not None:
                    visible += 1
        assert visible > 0

    def test_stop_halts_events(self, net7):
        churn = BackgroundChurn(net7, ChurnConfig(event_rate=1.0), seed=1)
        churn.start()
        net7.run_for(10.0)
        churn.stop()
        count = churn.events_generated
        net7.run_for(20.0)
        assert churn.events_generated == count

    def test_double_start_rejected(self, net7):
        churn = BackgroundChurn(net7, seed=1)
        churn.start()
        with pytest.raises(SimulationError):
            churn.start()

    def test_deterministic(self, graph7):
        from conftest import fast_network_config
        from repro.internet.network import Network

        counts = []
        for _ in range(2):
            net = Network(
                __import__("conftest").tiny_graph(),
                config=fast_network_config(),
                seed=3,
            )
            churn = BackgroundChurn(net, ChurnConfig(event_rate=0.5), seed=3)
            churn.start()
            net.run_for(60.0)
            counts.append((churn.events_generated, net.engine.events_processed))
        assert counts[0] == counts[1]

    def test_churn_does_not_touch_experiment_prefix(self, net7):
        tracker = OriginTracker(net7, "10.0.0.0/23")
        churn = BackgroundChurn(net7, ChurnConfig(event_rate=1.0), seed=2)
        churn.start()
        net7.run_for(30.0)
        assert tracker.flips == []
