"""Tests for Route objects and the Adj-RIB-In / Loc-RIB structures."""

import pytest

from repro.bgp.messages import Announcement
from repro.bgp.rib import AdjRibIn, LocRib
from repro.bgp.route import Route
from repro.errors import BGPError
from repro.net.prefix import Prefix


def P(text):
    return Prefix.parse(text)


def learned(prefix, path, peer, lp=100, at=0.0):
    return Route(P(prefix), path, peer, lp, learned_at=at)


class TestRoute:
    def test_local(self):
        route = Route.local(P("10.0.0.0/23"))
        assert route.is_local
        assert route.origin_as is None
        assert route.path_length == 0

    def test_learned_requires_path(self):
        with pytest.raises(BGPError):
            Route(P("10.0.0.0/23"), [], peer_asn=5, local_pref=100)

    def test_from_announcement(self):
        announcement = Announcement(P("10.0.0.0/23"), [5, 6])
        route = Route.from_announcement(announcement, peer_asn=5, local_pref=200, learned_at=3.0)
        assert route.origin_as == 6
        assert route.peer_asn == 5
        assert route.learned_at == 3.0

    def test_to_announcement_prepends(self):
        route = learned("10.0.0.0/23", [5, 6], peer=5)
        out = route.to_announcement(sender_asn=9)
        assert out.as_path == (9, 5, 6)

    def test_local_to_announcement(self):
        route = Route.local(P("10.0.0.0/23"))
        out = route.to_announcement(sender_asn=9)
        assert out.as_path == (9,)
        assert out.origin_as == 9

    def test_same_attributes(self):
        a = learned("10.0.0.0/23", [5, 6], peer=5, at=1.0)
        b = learned("10.0.0.0/23", [5, 6], peer=5, at=9.0)
        c = learned("10.0.0.0/23", [5, 7], peer=5)
        assert a.same_attributes(b)
        assert not a.same_attributes(c)


class TestAdjRibIn:
    def test_insert_and_candidates(self):
        rib = AdjRibIn()
        rib.insert(learned("10.0.0.0/23", [5, 6], peer=5))
        rib.insert(learned("10.0.0.0/23", [7, 6], peer=7))
        assert len(rib.candidates(P("10.0.0.0/23"))) == 2
        assert len(rib) == 2

    def test_insert_replaces_per_peer(self):
        rib = AdjRibIn()
        rib.insert(learned("10.0.0.0/23", [5, 6], peer=5))
        replaced = rib.insert(learned("10.0.0.0/23", [5, 9, 6], peer=5))
        assert replaced is not None
        assert len(rib.candidates(P("10.0.0.0/23"))) == 1

    def test_withdraw(self):
        rib = AdjRibIn()
        rib.insert(learned("10.0.0.0/23", [5, 6], peer=5))
        removed = rib.withdraw(5, P("10.0.0.0/23"))
        assert removed is not None
        assert rib.candidates(P("10.0.0.0/23")) == []
        assert rib.withdraw(5, P("10.0.0.0/23")) is None

    def test_route_from(self):
        rib = AdjRibIn()
        rib.insert(learned("10.0.0.0/23", [5, 6], peer=5))
        assert rib.route_from(5, P("10.0.0.0/23")).origin_as == 6
        assert rib.route_from(9, P("10.0.0.0/23")) is None

    def test_drop_peer(self):
        rib = AdjRibIn()
        rib.insert(learned("10.0.0.0/23", [5, 6], peer=5))
        rib.insert(learned("10.0.1.0/24", [5, 8], peer=5))
        rib.insert(learned("10.0.0.0/23", [7, 6], peer=7))
        dropped = rib.drop_peer(5)
        assert sorted(str(p) for p in dropped) == ["10.0.0.0/23", "10.0.1.0/24"]
        assert len(rib) == 1

    def test_prefixes_from(self):
        rib = AdjRibIn()
        rib.insert(learned("10.0.0.0/23", [5, 6], peer=5))
        assert rib.prefixes_from(5) == [P("10.0.0.0/23")]
        assert rib.prefixes_from(6) == []


class TestLocRib:
    def test_install_get_remove(self):
        rib = LocRib()
        route = learned("10.0.0.0/23", [5, 6], peer=5)
        assert rib.install(route) is None
        assert rib.get(P("10.0.0.0/23")) is route
        assert P("10.0.0.0/23") in rib
        assert rib.remove(P("10.0.0.0/23")) is route
        assert rib.remove(P("10.0.0.0/23")) is None

    def test_install_returns_previous(self):
        rib = LocRib()
        first = learned("10.0.0.0/23", [5, 6], peer=5)
        second = learned("10.0.0.0/23", [7, 6], peer=7)
        rib.install(first)
        assert rib.install(second) is first

    def test_resolve_longest_match(self):
        rib = LocRib()
        covering = learned("10.0.0.0/23", [5, 6], peer=5)
        specific = learned("10.0.0.0/24", [7, 8], peer=7)
        rib.install(covering)
        rib.install(specific)
        assert rib.resolve("10.0.0.1") is specific
        assert rib.resolve("10.0.1.1") is covering
        assert rib.resolve("10.9.0.1") is None

    def test_covered(self):
        rib = LocRib()
        rib.install(learned("10.0.0.0/24", [5, 6], peer=5))
        rib.install(learned("10.0.1.0/24", [5, 6], peer=5))
        rib.install(learned("10.1.0.0/24", [5, 6], peer=5))
        inside = [p for p, _r in rib.covered(P("10.0.0.0/23"))]
        assert inside == [P("10.0.0.0/24"), P("10.0.1.0/24")]

    def test_len_and_iteration(self):
        rib = LocRib()
        rib.install(learned("10.0.0.0/24", [5, 6], peer=5))
        rib.install(learned("10.0.1.0/24", [5, 6], peer=5))
        assert len(rib) == 2
        assert len(list(rib.routes())) == 2
        assert list(rib.prefixes()) == [P("10.0.0.0/24"), P("10.0.1.0/24")]
