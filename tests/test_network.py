"""Integration tests for the wired Network layer."""

import pytest

from repro.errors import SimulationError, TopologyError
from repro.internet.network import Network, NetworkConfig
from repro.net.prefix import Prefix
from repro.sim.latency import Constant

from conftest import fast_network_config, tiny_graph


def P(text):
    return Prefix.parse(text)


class TestBuild:
    def test_one_speaker_per_as(self, net7):
        assert sorted(net7.speakers) == [1, 2, 3, 4, 5, 6, 7]

    def test_one_session_per_link(self, net7):
        assert len(net7.sessions) == net7.graph.link_count()

    def test_speaker_lookup_error(self, net7):
        with pytest.raises(TopologyError):
            net7.speaker(99)


class TestAnnouncePropagation:
    def test_announcement_reaches_everyone(self, net7):
        net7.announce(6, "10.0.0.0/23")
        net7.run_until_converged()
        for asn in net7.asns():
            assert net7.resolve_origin(asn, "10.0.0.5") == 6

    def test_origin_map_and_fraction(self, net7):
        net7.announce(6, "10.0.0.0/23")
        net7.run_until_converged()
        origins = net7.origin_map("10.0.0.5")
        assert set(origins.values()) == {6}
        assert net7.fraction_routing_to("10.0.0.5", 6) == 1.0
        assert net7.ases_routing_to("10.0.0.5", 6) == net7.asns()

    def test_withdraw_clears_routes(self, net7):
        net7.announce(6, "10.0.0.0/23")
        net7.run_until_converged()
        net7.withdraw(6, "10.0.0.0/23")
        net7.run_until_converged()
        assert net7.fraction_routing_to("10.0.0.5", 6) == 0.0

    def test_string_and_prefix_accepted(self, net7):
        net7.announce(6, P("10.0.0.0/24"))
        net7.announce(6, "10.0.1.0/24")
        net7.run_until_converged()
        assert net7.resolve_origin(7, "10.0.1.1") == 6


class TestHijackDynamics:
    def test_exact_hijack_splits_internet(self, net7):
        net7.announce(6, "10.0.0.0/23")
        net7.run_until_converged()
        net7.announce(7, "10.0.0.0/23")  # hijacker
        net7.run_until_converged()
        origins = set(net7.origin_map("10.0.0.5").values())
        assert origins == {6, 7}
        # The hijacker itself and its closest upstream flip.
        assert net7.resolve_origin(7, "10.0.0.5") == 7

    def test_deaggregation_reclaims_everything(self, net7):
        net7.announce(6, "10.0.0.0/23")
        net7.run_until_converged()
        net7.announce(7, "10.0.0.0/23")
        net7.run_until_converged()
        net7.announce(6, "10.0.0.0/24")
        net7.announce(6, "10.0.1.0/24")
        net7.run_until_converged()
        # Everyone except... nobody: /24s beat the hijacked /23 everywhere,
        # including at the hijacker itself.
        assert net7.fraction_routing_to("10.0.0.5", 6) == 1.0
        assert net7.fraction_routing_to("10.0.1.5", 6) == 1.0

    def test_slash24_deaggregation_filtered(self, graph7):
        # With the default /24 import limit, /25s never propagate.
        net = Network(graph7, config=fast_network_config(), seed=1)
        net.announce(6, "10.0.0.0/24")
        net.run_until_converged()
        net.announce(7, "10.0.0.0/24")
        net.run_until_converged()
        net.announce(6, "10.0.0.0/25")
        net.announce(6, "10.0.0.128/25")
        net.run_until_converged()
        hijacked = [
            asn for asn in net.asns() if net.resolve_origin(asn, "10.0.0.5") == 7
        ]
        assert hijacked  # the /25s were filtered, hijack persists somewhere
        # And no speaker except the victim has a /25 route.
        for asn in net.asns():
            if asn == 6:
                continue
            assert net.speaker(asn).best_route(P("10.0.0.0/25")) is None


class TestAttachment:
    def test_attach_stub(self, net7):
        speaker = net7.attach_stub(100, [3, 5])
        assert net7.speaker(100) is speaker
        assert net7.graph.providers_of(100) == [3, 5]
        net7.announce(100, "10.9.0.0/24")
        net7.run_until_converged()
        assert net7.fraction_routing_to("10.9.0.1", 100) == 1.0

    def test_attach_existing_asn_rejected(self, net7):
        with pytest.raises(TopologyError):
            net7.attach_stub(6, [3])

    def test_attach_needs_provider(self, net7):
        with pytest.raises(TopologyError):
            net7.attach_stub(100, [])

    def test_monitor_session(self, net7):
        class Sink:
            asn = 4_199_999_999
            received = []

            def deliver(self, sender_asn, message):
                self.received.append(message)

        sink = Sink()
        net7.add_monitor_session(3, sink)
        net7.announce(6, "10.0.0.0/23")
        net7.run_until_converged()
        prefixes = [a.prefix for m in sink.received for a in m.announcements]
        assert P("10.0.0.0/23") in prefixes


class TestConvergenceGuards:
    def test_convergence_timeout_raises(self, graph7):
        # Glacial MRAI + tiny max_time forces the timeout path.
        config = NetworkConfig(
            processing_delay=Constant(10.0),
            mrai=Constant(10.0),
            session_delay_override=Constant(5.0),
        )
        net = Network(graph7, config=config, seed=1)
        net.announce(6, "10.0.0.0/23")
        with pytest.raises(SimulationError):
            net.run_until_converged(max_time=1.0)

    def test_run_for_advances_clock(self, net7):
        before = net7.engine.now
        net7.run_for(12.5)
        assert net7.engine.now == before + 12.5

    def test_converged_network_is_quiet(self, net7):
        net7.announce(6, "10.0.0.0/23")
        net7.run_until_converged()
        assert not net7.tracker.busy


class TestSessionIndex:
    def test_fail_and_restore_via_index(self, net7):
        net7.announce(6, "10.0.0.0/23")
        net7.run_until_converged()
        net7.fail_link(3, 6)
        net7.run_until_converged()
        # Routes re-route or disappear, but the network stays consistent.
        assert net7.resolve_origin(6, "10.0.0.5") == 6
        net7.restore_link(3, 6)
        net7.run_until_converged()
        assert net7.fraction_routing_to("10.0.0.5", 6) == 1.0

    def test_find_session_order_insensitive(self, net7):
        assert net7._find_session(3, 6) is net7._find_session(6, 3)

    def test_unknown_pair_raises(self, net7):
        with pytest.raises(TopologyError):
            net7.fail_link(1, 99)
        with pytest.raises(TopologyError):
            net7.fail_link(6, 7)  # both exist but are not adjacent

    def test_duplicate_session_rejected(self, net7):
        with pytest.raises(TopologyError):
            net7.attach_stub(100, [3, 3])

    def test_index_covers_every_session(self, net7):
        net7.attach_stub(100, [3, 5])
        assert len(net7._session_index) == len(net7.sessions)
        for session in net7.sessions:
            assert net7._find_session(session.a.asn, session.b.asn) is session


class TestOriginCache:
    def test_repeated_polls_hit_cache(self, net7):
        net7.announce(6, "10.0.0.0/23")
        net7.run_until_converged()
        first = net7.origin_map("10.0.0.5")
        for _ in range(5):
            assert net7.origin_map("10.0.0.5") == first
        stats = net7.origin_cache_stats
        assert stats["targets"] == 1
        assert stats["hits"] == 5

    def test_cache_tracks_announce_and_withdraw(self, net7):
        # Prime the cache before any route exists.
        assert set(net7.origin_map("10.0.0.5").values()) == {None}
        net7.announce(6, "10.0.0.0/23")
        net7.run_until_converged()
        assert set(net7.origin_map("10.0.0.5").values()) == {6}
        net7.withdraw(6, "10.0.0.0/23")
        net7.run_until_converged()
        assert set(net7.origin_map("10.0.0.5").values()) == {None}
        assert net7.origin_cache_stats["invalidations"] > 0

    def test_cache_matches_fresh_resolution(self, net7):
        net7.origin_map("10.0.0.5")  # cache primed cold
        net7.announce(6, "10.0.0.0/23")
        net7.run_until_converged()
        net7.announce(7, "10.0.0.0/24")  # more-specific hijack
        net7.run_until_converged()
        cached = net7.origin_map("10.0.0.5")
        assert cached == {
            asn: net7.speaker(asn).resolve_origin(P("10.0.0.5/32"))
            for asn in net7.asns()
        }
        assert net7.fraction_routing_to("10.0.0.5", 7) == pytest.approx(
            len(net7.ases_routing_to("10.0.0.5", 7)) / 7
        )

    def test_unrelated_prefix_does_not_invalidate(self, net7):
        net7.announce(6, "10.0.0.0/23")
        net7.run_until_converged()
        net7.origin_map("10.0.0.5")
        before = net7.origin_cache_stats["invalidations"]
        net7.announce(5, "99.0.0.0/16")
        net7.run_until_converged()
        assert net7.origin_cache_stats["invalidations"] == before

    def test_attached_stub_joins_existing_cache(self, net7):
        net7.announce(6, "10.0.0.0/23")
        net7.run_until_converged()
        net7.origin_map("10.0.0.5")
        net7.attach_stub(100, [3])
        net7.run_until_converged()
        origins = net7.origin_map("10.0.0.5")
        assert origins[100] == 6

    def test_cache_survives_link_failure(self, net7):
        net7.announce(6, "10.0.0.0/23")
        net7.run_until_converged()
        net7.origin_map("10.0.0.5")
        net7.fail_link(3, 6)
        net7.run_until_converged()
        cached = net7.origin_map("10.0.0.5")
        assert cached == {
            asn: net7.resolve_origin(asn, "10.0.0.5") for asn in net7.asns()
        }
