"""Tests for looking glasses and the Periscope poll scheduler."""

import pytest

from repro.errors import FeedError
from repro.feeds.periscope import LookingGlass, PeriscopeAPI
from repro.net.prefix import Prefix
from repro.sim.latency import Constant
from repro.sim.rng import SeededRNG


def P(text):
    return Prefix.parse(text)


def make_lg(net, asn, min_interval=0.0, query_delay=0.2):
    return LookingGlass(
        f"lg-{asn}",
        net.speaker(asn),
        net.engine,
        query_delay=Constant(query_delay),
        min_query_interval=min_interval,
        rng=SeededRNG(asn),
    )


class TestLookingGlass:
    def test_query_returns_exact_route(self, net7):
        net7.announce(6, "10.0.0.0/23")
        net7.run_until_converged()
        lg = make_lg(net7, 3)
        answers = []
        lg.query(P("10.0.0.0/23"), lambda when, rows: answers.append((when, rows)))
        net7.run_for(1.0)
        assert len(answers) == 1
        _when, rows = answers[0]
        assert any(prefix == P("10.0.0.0/23") and path[-1] == 6 for prefix, path in rows)

    def test_query_includes_more_specifics(self, net7):
        net7.announce(6, "10.0.0.0/24")
        net7.announce(6, "10.0.1.0/24")
        net7.run_until_converged()
        lg = make_lg(net7, 3)
        answers = []
        lg.query(P("10.0.0.0/23"), lambda when, rows: answers.append(rows))
        net7.run_for(1.0)
        prefixes = {prefix for prefix, _path in answers[0]}
        assert prefixes == {P("10.0.0.0/24"), P("10.0.1.0/24")}

    def test_query_includes_covering_route(self, net7):
        net7.announce(6, "10.0.0.0/16")
        net7.run_until_converged()
        lg = make_lg(net7, 3)
        answers = []
        lg.query(P("10.0.0.0/23"), lambda when, rows: answers.append(rows))
        net7.run_for(1.0)
        assert any(prefix == P("10.0.0.0/16") for prefix, _p in answers[0])

    def test_empty_answer_when_no_route(self, net7):
        lg = make_lg(net7, 3)
        answers = []
        lg.query(P("10.0.0.0/23"), lambda when, rows: answers.append(rows))
        net7.run_for(1.0)
        assert answers == [[]]

    def test_rate_limit_spaces_queries(self, net7):
        lg = make_lg(net7, 3, min_interval=10.0)
        times = []
        for _ in range(3):
            lg.query(P("10.0.0.0/23"), lambda when, rows: times.append(when))
        net7.run_for(60.0)
        assert len(times) == 3
        assert times[1] - times[0] >= 9.9
        assert times[2] - times[1] >= 9.9

    def test_answer_reflects_query_time_state(self, net7):
        # The LG snapshot happens when the query reaches the router, not
        # when the query was issued.
        lg = make_lg(net7, 6, query_delay=2.0)
        answers = []
        lg.query(P("10.0.0.0/23"), lambda when, rows: answers.append(rows))
        net7.announce(6, "10.0.0.0/23")  # announced before snapshot time
        net7.run_for(5.0)
        assert answers[0]  # route visible


class TestPeriscope:
    def _periscope(self, net, asns, poll=20.0):
        lgs = [make_lg(net, asn) for asn in asns]
        return PeriscopeAPI(
            net.engine, lgs, poll_interval=poll, rng=SeededRNG(0)
        )

    def test_poll_detects_announcement(self, net7):
        api = self._periscope(net7, [3, 4])
        events = []
        api.subscribe(events.append)
        api.watch([P("10.0.0.0/23")])
        net7.announce(6, "10.0.0.0/23")
        net7.run_until_converged()
        net7.run_for(45.0)
        assert events
        assert all(e.source == "periscope" for e in events)
        assert {e.vantage_asn for e in events} == {3, 4}

    def test_unchanged_answers_deduplicated(self, net7):
        api = self._periscope(net7, [3])
        events = []
        api.subscribe(events.append)
        api.watch([P("10.0.0.0/23")])
        net7.announce(6, "10.0.0.0/23")
        net7.run_until_converged()
        net7.run_for(200.0)  # many poll rounds
        announcements = [e for e in events if e.is_announcement]
        assert len(announcements) == 1  # reported once, not per poll

    def test_withdraw_reported(self, net7):
        api = self._periscope(net7, [3])
        events = []
        api.subscribe(events.append)
        api.watch([P("10.0.0.0/23")])
        net7.announce(6, "10.0.0.0/23")
        net7.run_until_converged()
        net7.run_for(45.0)
        net7.withdraw(6, "10.0.0.0/23")
        net7.run_until_converged()
        net7.run_for(45.0)
        assert any(not e.is_announcement for e in events)

    def test_origin_change_reported(self, net7):
        api = self._periscope(net7, [3])
        events = []
        api.subscribe(events.append)
        api.watch([P("10.0.0.0/23")])
        net7.announce(6, "10.0.0.0/23")
        net7.run_until_converged()
        net7.run_for(45.0)
        net7.announce(7, "10.0.0.0/23")  # hijack; AS3 may or may not flip
        net7.run_until_converged()
        net7.run_for(45.0)
        origins = {e.origin_as for e in events if e.is_announcement}
        assert 6 in origins  # baseline seen
        if net7.resolve_origin(3, "10.0.0.5") == 7:
            assert 7 in origins  # flip seen too

    def test_stop_polling(self, net7):
        api = self._periscope(net7, [3])
        api.subscribe(lambda e: None)
        api.watch([P("10.0.0.0/23")])
        net7.run_for(50.0)
        count = api.queries_sent
        api.stop()
        assert not api.polling
        net7.run_for(100.0)
        assert api.queries_sent == count

    def test_queries_per_minute(self, net7):
        api = self._periscope(net7, [3, 4], poll=30.0)
        assert api.queries_per_minute() == 0.0
        api.watch([P("10.0.0.0/23"), P("99.0.0.0/16")])
        # 2 LGs * 2 prefixes * 2 polls/minute
        assert api.queries_per_minute() == pytest.approx(8.0)

    def test_invalid_poll_interval(self, net7):
        with pytest.raises(FeedError):
            PeriscopeAPI(net7.engine, [], poll_interval=0.0)

    def test_polls_staggered_across_lgs(self, net7):
        api = self._periscope(net7, [3, 4, 5], poll=30.0)
        api.watch([P("10.0.0.0/23")])
        net7.run_for(31.0)
        served = [lg.queries_served for lg in api.looking_glasses]
        assert all(count >= 1 for count in served)


class TestBacklogCap:
    def _overloaded_lg(self, net, backlog=3):
        return LookingGlass(
            "lg-3",
            net.speaker(3),
            net.engine,
            query_delay=Constant(0.2),
            min_query_interval=10.0,
            rng=SeededRNG(3),
            max_backlog=backlog,
        )

    def test_overload_drops_past_backlog(self, net7):
        # Regression: queries beyond the rate limit used to queue without
        # bound, so a fast client pushed the schedule arbitrarily far into
        # the future and answer staleness grew forever.
        lg = self._overloaded_lg(net7, backlog=3)
        times = []
        for _ in range(50):
            lg.query(P("10.0.0.0/23"), lambda when, rows: times.append(when))
        net7.run_for(200.0)
        assert lg.queries_dropped > 0
        assert lg.queries_served + lg.queries_dropped == 50
        # Only the immediate query plus a full backlog ever run.
        assert lg.queries_served <= 1 + 3

    def test_backlog_drain_bounded_drift(self, net7):
        lg = self._overloaded_lg(net7, backlog=3)
        for _ in range(50):
            lg.query(P("10.0.0.0/23"), lambda when, rows: None)
        # The rate-limit schedule never drifts past backlog * interval.
        assert lg._next_allowed - net7.engine.now <= 3 * 10.0 + 1e-9

    def test_backlog_recovers_after_drain(self, net7):
        lg = self._overloaded_lg(net7, backlog=1)
        for _ in range(10):
            lg.query(P("10.0.0.0/23"), lambda when, rows: None)
        dropped = lg.queries_dropped
        assert dropped > 0
        net7.run_for(60.0)  # queue drains
        served = []
        lg.query(P("10.0.0.0/23"), lambda when, rows: served.append(when))
        net7.run_for(30.0)
        assert len(served) == 1
        assert lg.queries_dropped == dropped  # no new drops once idle

    def test_unlimited_lg_never_drops(self, net7):
        lg = make_lg(net7, 3, min_interval=0.0)
        for _ in range(100):
            lg.query(P("10.0.0.0/23"), lambda when, rows: None)
        net7.run_for(10.0)
        assert lg.queries_dropped == 0
        assert lg.queries_served == 100

    def test_api_aggregates_drops(self, net7):
        lgs = [self._overloaded_lg(net7, backlog=2)]
        api = PeriscopeAPI(net7.engine, lgs, poll_interval=1.0, rng=SeededRNG(0))
        api.subscribe(lambda e: None)
        api.watch([P("10.0.0.0/23")])
        net7.run_for(120.0)
        api.stop()
        assert api.queries_dropped == lgs[0].queries_dropped
        assert api.queries_dropped > 0
        assert "dropped" in repr(api)


class TestDeadLookingGlass:
    def test_dead_lg_counts_drops(self, net7):
        # Regression: queries to a dead LG must fail fast into the
        # queries_dropped accounting instead of queueing forever.
        lg = make_lg(net7, 3, min_interval=10.0)
        lg.fail()
        answers = []
        for _ in range(5):
            lg.query(P("10.0.0.0/23"), lambda when, rows: answers.append(rows))
        net7.run_for(60.0)
        assert answers == []
        assert lg.queries_dropped == 5
        assert lg.queries_served == 0
        assert lg.failures == 1

    def test_dead_drops_do_not_advance_rate_clock(self, net7):
        # The outage must not accumulate rate-limit slots: a recovering LG
        # answers promptly instead of first paying off its downtime.
        lg = make_lg(net7, 3, min_interval=10.0)
        lg.fail()
        for _ in range(5):
            lg.query(P("10.0.0.0/23"), lambda when, rows: None)
        assert lg._next_allowed == 0.0
        lg.repair()
        times = []
        lg.query(P("10.0.0.0/23"), lambda when, rows: times.append(when))
        net7.run_for(5.0)
        assert len(times) == 1
        assert times[0] < 1.0  # answered immediately, no backlog to drain

    def test_query_in_flight_when_lg_dies_is_lost(self, net7):
        lg = make_lg(net7, 3, query_delay=2.0)
        answers = []
        lg.query(P("10.0.0.0/23"), lambda when, rows: answers.append(rows))
        lg.fail()  # dies before the query reaches the router
        net7.run_for(10.0)
        assert answers == []
        assert lg.queries_dropped == 1

    def test_one_dead_lg_does_not_wedge_fanout(self, net7):
        # Regression: the poll scheduler keeps serving events from the
        # surviving LGs while a dead one eats its queries.
        net7.announce(6, "10.0.0.0/23")
        net7.run_until_converged()
        lgs = [make_lg(net7, 3), make_lg(net7, 4)]
        lgs[0].fail()
        api = PeriscopeAPI(net7.engine, lgs, poll_interval=20.0, rng=SeededRNG(0))
        events = []
        api.subscribe(events.append)
        api.watch([P("10.0.0.0/23")])
        net7.run_for(45.0)
        api.stop()
        assert api.transport_up  # one LG still answers
        assert lgs[0].queries_dropped > 0
        assert events  # fan-out not wedged
        assert {e.vantage_asn for e in events} == {4}

    def test_all_dead_takes_transport_down(self, net7):
        lgs = [make_lg(net7, 3), make_lg(net7, 4)]
        api = PeriscopeAPI(net7.engine, lgs, poll_interval=20.0, rng=SeededRNG(0))
        for lg in lgs:
            lg.fail()
        assert not api.transport_up
        assert not api.reconnect()  # supervisor probe fails while all dead
        lgs[1].repair()
        assert api.transport_up
        assert api.reconnect()

    def test_repaired_lg_serves_next_poll_round(self, net7):
        net7.announce(6, "10.0.0.0/23")
        net7.run_until_converged()
        lg = make_lg(net7, 3)
        lg.fail()
        api = PeriscopeAPI(net7.engine, [lg], poll_interval=20.0, rng=SeededRNG(0))
        events = []
        api.subscribe(events.append)
        api.watch([P("10.0.0.0/23")])
        net7.run_for(45.0)
        assert events == []
        dropped = lg.queries_dropped
        assert dropped > 0
        lg.repair()
        net7.run_for(45.0)
        api.stop()
        assert events  # polls resumed by themselves after repair
        assert lg.queries_dropped == dropped  # no further drops once up
