"""False-positive regression suite: benign look-alikes must stay silent.

The events that page operators for nothing — a legitimate MOAS (anycast)
origin, a brand-new peering, the operator's own traffic-engineering
de-aggregation — are control-plane-indistinguishable from hijacks.  With
Oscilloscope-style data-plane corroboration attached and healthy, ARTEMIS
must raise **zero** alerts on all of them; without it, the suite records
exactly which rules fire (the cost of control-plane-only operation).
"""

from __future__ import annotations

from repro.eval.taxonomy import (
    false_positive_scenarios,
    run_false_positive_suite,
)
from repro.net.prefix import Prefix
from repro.testbed.scenario import TrackerCorroborator


class TestFalsePositiveSuite:
    def test_zero_alerts_with_corroboration(self):
        report = run_false_positive_suite(corroborate=True)
        assert report["total_false_positives"] == 0
        for scenario in report["scenarios"]:
            assert scenario["false_positives"] == 0, scenario

    def test_control_plane_only_fires_the_gated_rules(self):
        report = run_false_positive_suite(corroborate=False)
        by_name = {s["name"]: s for s in report["scenarios"]}
        # MOAS looks like an exact-origin hijack on the control plane.
        assert by_name["legit-moas"]["alert_types"] == ["exact-origin"]
        # A new upstream looks like a type-1 path hijack.
        assert by_name["new-peering"]["alert_types"] == ["path"]
        # The operator's own de-aggregation carries the legit origin and
        # upstreams: silent even without corroboration.
        assert by_name["benign-deaggregation"]["false_positives"] == 0

    def test_scenarios_are_well_formed(self):
        scenarios = false_positive_scenarios()
        assert [s["name"] for s in scenarios] == [
            "legit-moas",
            "new-peering",
            "benign-deaggregation",
        ]
        for scenario in scenarios:
            for event in scenario["events"]:
                assert event.is_announcement
                assert event.as_path


class FakeTracker:
    """Duck-typed stand-in for OriginTracker (watch + fraction API)."""

    def __init__(self, watch, fraction):
        self.watch = Prefix.parse(watch)
        self.fraction = fraction

    def fraction_routing_to(self, values, mode="all"):
        self.last_query = (frozenset(values), mode)
        return self.fraction


class TestTrackerCorroborator:
    def test_unwatched_prefix_is_always_healthy(self):
        probe = TrackerCorroborator(FakeTracker("10.0.0.0/23", 0.0), {65001})
        assert probe(Prefix.parse("192.168.0.0/24")) is True

    def test_threshold_decides_health(self):
        tracker = FakeTracker("10.0.0.0/23", 0.96)
        probe = TrackerCorroborator(tracker, {65001}, threshold=0.95)
        assert probe(Prefix.parse("10.0.0.0/24")) is True
        tracker.fraction = 0.90
        assert probe(Prefix.parse("10.0.0.0/24")) is False

    def test_live_healthy_values_support_moas_workflow(self):
        # Operators legitimizing a new anycast origin extend the healthy
        # set in place; the probe sees the update on the next query.
        tracker = FakeTracker("10.0.0.0/23", 1.0)
        healthy = {65001}
        probe = TrackerCorroborator(tracker, healthy, threshold=0.95)
        assert probe(Prefix.parse("10.0.0.0/23")) is True
        assert tracker.last_query == (frozenset({65001}), "all")
        healthy.add(65077)
        probe(Prefix.parse("10.0.0.0/23"))
        assert tracker.last_query == (frozenset({65001, 65077}), "all")
