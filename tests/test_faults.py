"""Chaos suite: fault injection against the monitoring plane.

The paper's robustness claim is that detection needs *some* live source,
not all of them: the incident delay is the min over live sources, and any
single slow or dead feed only degrades the minimum, never loses the alert.
These tests break feeds on purpose — source outages mid-hijack, latency
inflation, message loss/duplication/reordering, collector crash-restart,
vantage-session flapping — and assert exactly that, plus the substrate's
own contract: the same seed and the same plan reproduce the run bit for
bit (pinned by a golden digest).
"""

import hashlib
import itertools

import pytest

from conftest import fast_scenario
from repro.faults import Fault, FaultInjector, FaultPlan
from repro.faults.plan import FaultError
from repro.testbed.scenario import HijackExperiment

#: Digest of the golden chaos scenario (seed 5, RICH_PLAN below): the
#: full observable outcome of a faulted run, pinned so that any drift in
#: fault scheduling, channel coin flips, supervisor transitions, or
#: detection under degradation fails loudly.
GOLDEN_FAULT_DIGEST = (
    "010bc34d1ae3bfdd00ae88c8e9fa7654569f3c09ac2f94c557fbe63f1ba95984"
)

#: The pinned plan exercises every windowed fault kind at once: a
#: mid-hijack RIS outage, BGPmon latency inflation and message loss,
#: duplication + reordering on the recovered RIS feed, and a collector
#: crash-restart with RIB re-sync.
RICH_PLAN = FaultPlan(
    [
        Fault("outage", "ris", 5.0, duration=120.0),
        Fault("delay", "bgpmon", 0.0, duration=300.0, factor=2.0, add=10.0),
        Fault("loss", "bgpmon", 0.0, duration=300.0, probability=0.3),
        Fault("dup", "ris", 130.0, duration=100.0, probability=0.5),
        Fault("reorder", "ris", 130.0, duration=100.0, probability=0.5, jitter=3.0),
        Fault("collector_crash", "ris-rrc00", 150.0, duration=30.0),
    ],
    seed=13,
    name="rich",
)


def chaos_config(seed=5, faults=None, **overrides):
    """The golden scenario plus a sub-prefix hijack, so the more-specific
    wins everywhere and *every* source produces evidence — the setting
    where min-over-sources is actually a race."""
    return fast_scenario(
        seed=seed, hijack_prefix="10.0.0.0/24", faults=faults, **overrides
    )


def run_chaos(seed=5, faults=None, **overrides):
    experiment = HijackExperiment(chaos_config(seed=seed, faults=faults, **overrides))
    return experiment, experiment.run()


def kill_plan(sources, at=0.0, duration=3600.0):
    return FaultPlan(
        [Fault("outage", source, at, duration=duration) for source in sources],
        name="kill-" + "+".join(sources),
    )


def outcome_digest(result) -> str:
    material = repr(
        (
            result.detection_delay,
            sorted(result.per_source_delay.items()),
            sorted(result.per_source_delay_final.items()),
            sorted(result.sources_live_at_alert),
            sorted(
                (name, sorted(report.items()))
                for name, report in result.source_report.items()
            ),
            sorted(result.source_lag.items()),
            result.faults_injected,
            [tuple(entry) for entry in result.fault_log],
            result.alert_type,
            result.total_time,
        )
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


# --------------------------------------------------------------- plan layer


class TestFaultPlan:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultError):
            Fault("meteor", "ris", 0.0)

    def test_window_kinds_need_duration(self):
        for kind in ("delay", "loss", "dup", "reorder", "collector_crash", "flap"):
            with pytest.raises(FaultError):
                Fault(kind, "ris", 0.0, vantage=1)

    def test_negative_time_rejected(self):
        with pytest.raises(FaultError):
            Fault("outage", "ris", -1.0)

    def test_probability_bounds(self):
        with pytest.raises(FaultError):
            Fault("loss", "ris", 0.0, duration=10.0, probability=1.5)

    def test_flap_needs_vantage(self):
        with pytest.raises(FaultError):
            Fault("flap", "ris-rrc00", 0.0, duration=10.0)

    def test_json_roundtrip(self):
        rebuilt = FaultPlan.from_json(RICH_PLAN.to_json())
        assert rebuilt.to_dict() == RICH_PLAN.to_dict()
        assert rebuilt.name == "rich" and rebuilt.seed == 13

    def test_unknown_fields_rejected(self):
        with pytest.raises(FaultError):
            FaultPlan.from_dict({"faults": [], "surprise": 1})
        with pytest.raises(FaultError):
            FaultPlan.from_dict({"faults": [{"kind": "outage", "target": "x", "at": 0, "color": "red"}]})

    def test_config_accepts_plan_dict(self):
        config = chaos_config(faults=RICH_PLAN.to_dict())
        assert config.faults.to_dict() == RICH_PLAN.to_dict()

    def test_config_loads_plan_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(RICH_PLAN.to_json(), encoding="utf-8")
        config = chaos_config(faults=str(path))
        assert config.faults.to_dict() == RICH_PLAN.to_dict()


class TestInjectorResolution:
    def test_unknown_target_fails_at_setup(self):
        experiment = HijackExperiment(
            chaos_config(faults=FaultPlan([Fault("outage", "nsa-feed", 0.0)]))
        )
        with pytest.raises(FaultError):
            experiment.setup()

    def test_flap_vantage_must_feed_collector(self):
        experiment = HijackExperiment(chaos_config())
        experiment.setup()
        bogus = FaultPlan(
            [Fault("flap", "ris-rrc00", 0.0, duration=10.0, vantage=999999)]
        )
        with pytest.raises(FaultError):
            FaultInjector(experiment.network, experiment.monitors, bogus)

    def test_double_arm_rejected(self):
        experiment = HijackExperiment(chaos_config())
        experiment.setup()
        injector = FaultInjector(
            experiment.network, experiment.monitors, kill_plan(["ris"])
        )
        injector.arm(0.0)
        with pytest.raises(FaultError):
            injector.arm(0.0)


# ------------------------------------------------------- the paper's claim


SOURCES = ("ris", "bgpmon", "periscope")


class TestKillKofN:
    """Killing k of n sources never loses the alert while >= 1 is live."""

    @pytest.mark.parametrize(
        "killed",
        [c for k in (1, 2) for c in itertools.combinations(SOURCES, k)],
        ids=lambda c: "+".join(c),
    )
    def test_alert_survives(self, killed):
        _exp, result = run_chaos(faults=kill_plan(killed))
        assert result.detection_delay is not None
        # Evidence never comes from a source that was dead the whole time.
        assert not set(result.per_source_delay_final) & set(killed)
        # The supervisor noticed every kill, behaviourally.
        for source in killed:
            assert result.source_report[source]["state"] == "dead"
            assert result.source_report[source]["reconnect_attempts"] > 0

    def test_live_at_alert_excludes_confirmed_dead_sources(self):
        # Tight supervision so the kill is *confirmed* before the alert
        # fires (the default 30 s staleness timeout is honest: an alert
        # arriving inside the suspicion window still believes the feed is
        # live — behavioural detection, no oracle).
        _exp, result = run_chaos(
            faults=kill_plan(["periscope"]),
            supervision=dict(check_interval=1.0, staleness_timeout=5.0),
        )
        assert result.detection_delay is not None
        assert "periscope" not in result.sources_live_at_alert
        assert set(result.sources_live_at_alert) == {"ris", "bgpmon"}

    def test_all_sources_dead_loses_detection(self):
        _exp, result = run_chaos(
            faults=kill_plan(SOURCES),
            detection_timeout=400.0,
            observation_window=60.0,
        )
        assert result.detection_delay is None
        assert result.sources_live_at_alert == []

    def test_detection_delay_is_min_over_sources(self):
        _exp, result = run_chaos()
        assert result.per_source_delay_final
        assert result.detection_delay == min(result.per_source_delay_final.values())

    def test_min_over_sources_holds_under_kill(self):
        _exp, result = run_chaos(faults=kill_plan(["periscope"]))
        assert result.detection_delay == min(result.per_source_delay_final.values())


class TestMidHijackKill:
    def test_killing_fastest_degrades_to_next_fastest(self):
        _exp, baseline = run_chaos()
        fastest = min(
            baseline.per_source_delay_final, key=baseline.per_source_delay_final.get
        )
        survivors = {
            source: delay
            for source, delay in baseline.per_source_delay_final.items()
            if source != fastest
        }
        # Kill the winner before its first evidence lands.
        kill_at = baseline.per_source_delay_final[fastest] / 2.0
        _exp2, degraded = run_chaos(
            faults=kill_plan([fastest], at=kill_at, duration=3600.0)
        )
        assert degraded.detection_delay is not None
        assert fastest not in degraded.per_source_delay_final
        assert degraded.detection_delay > baseline.detection_delay
        # Degrades to the next-fastest live source, not to nothing: the
        # surviving sources' own evidence timing is unchanged by the kill.
        assert degraded.detection_delay == pytest.approx(min(survivors.values()))

    def test_fastest_source_recovers_after_outage_window(self):
        _exp, baseline = run_chaos()
        fastest = min(
            baseline.per_source_delay_final, key=baseline.per_source_delay_final.get
        )
        _exp2, result = run_chaos(faults=kill_plan([fastest], at=1.0, duration=90.0))
        report = result.source_report[fastest]
        assert report["state"] == "live"
        assert report["outages"] == 1
        assert report["downtime"] > 0.0
        assert report["reconnect_attempts"] >= 1


# ---------------------------------------------------------- other fault kinds


class TestDelayAndChannelFaults:
    def test_delay_fault_inflates_realized_lag(self):
        _exp, baseline = run_chaos()
        plan = FaultPlan(
            [Fault("delay", "ris", 0.0, duration=3600.0, factor=3.0, add=30.0)]
        )
        _exp2, slowed = run_chaos(faults=plan)
        assert slowed.source_lag["ris"] > baseline.source_lag["ris"] * 2.0
        # The other feeds are untouched.
        assert slowed.source_lag["periscope"] == pytest.approx(
            baseline.source_lag["periscope"]
        )

    def test_total_loss_on_a_source_is_an_outage(self):
        plan = FaultPlan(
            [Fault("loss", "ris", 0.0, duration=3600.0, probability=1.0)]
        )
        exp, result = run_chaos(faults=plan)
        assert result.detection_delay is not None
        assert "ris" not in result.per_source_delay_final
        dropped = sum(
            c.fault_channel.messages_dropped
            for c in exp.monitors.ris.collectors
            if c.fault_channel is not None
        )
        assert dropped > 0

    def test_duplication_does_not_double_alert(self):
        plan = FaultPlan(
            [Fault("dup", "ris", 0.0, duration=3600.0, probability=1.0)]
        )
        exp, result = run_chaos(faults=plan)
        hijack_alerts = [
            a
            for a in exp.artemis.alerts
            if a.offender_asn == result.hijacker_asn
        ]
        assert len(hijack_alerts) == 1
        duplicated = sum(
            c.fault_channel.messages_duplicated
            for c in exp.monitors.ris.collectors
            if c.fault_channel is not None
        )
        assert duplicated > 0

    def test_collector_crash_restart_resyncs_rib(self):
        plan = FaultPlan(
            [Fault("collector_crash", "ris-rrc00", 20.0, duration=40.0)]
        )
        exp, result = run_chaos(faults=plan)
        box = next(
            c for c in exp.monitors.ris.collectors if c.name == "ris-rrc00"
        )
        assert box.crashes == 1
        assert box.up
        # The re-established monitor sessions replayed their full feeds.
        assert box.table
        assert result.detection_delay is not None
        actions = [entry[1] for entry in result.fault_log]
        assert "crash" in actions and "restart" in actions

    def test_flap_cycles_one_vantage_session(self):
        exp0 = HijackExperiment(chaos_config())
        exp0.setup()
        box = next(
            c for c in exp0.monitors.ris.collectors if c.name == "ris-rrc00"
        )
        vantage = box.vantage_asns[0]
        plan = FaultPlan(
            [
                Fault(
                    "flap",
                    "ris-rrc00",
                    10.0,
                    duration=60.0,
                    period=20.0,
                    vantage=vantage,
                )
            ]
        )
        exp, result = run_chaos(faults=plan)
        downs = [e for e in result.fault_log if e[1] == "flap-down"]
        ups = [e for e in result.fault_log if e[1] == "flap-up"]
        assert len(downs) >= 2 and len(ups) >= 2
        session = exp.network._find_session(vantage, box.asn)
        assert session.up  # left restored after the window
        assert result.detection_delay is not None


class TestFailover:
    def test_batch_failover_saves_the_alert_when_all_live_sources_die(self):
        _exp, result = run_chaos(
            faults=kill_plan(("ris", "bgpmon", "periscope")),
            failover_to_batch=True,
            detection_timeout=2500.0,
            observation_window=60.0,
        )
        assert result.detection_delay is not None
        assert "batch" in result.per_source_delay_final or any(
            "routeviews" in s for s in result.per_source_delay_final
        )

    def test_backups_stay_out_of_healthy_runs(self):
        exp, result = run_chaos(failover_to_batch=True)
        assert not exp.supervisor.failover_engaged
        assert result.detection_delay is not None
        assert set(result.per_source_delay_final) <= {"ris", "bgpmon", "periscope"}


# ------------------------------------------------------------- determinism


class TestFaultDeterminism:
    def test_same_seed_same_plan_bit_identical(self):
        first_exp, first = run_chaos(faults=RICH_PLAN)
        second_exp, second = run_chaos(faults=RICH_PLAN)
        assert outcome_digest(first) == outcome_digest(second)
        assert first.fault_log == second.fault_log
        assert first_exp.supervisor.transitions == second_exp.supervisor.transitions
        assert [
            (a.id, a.type, a.detected_at) for a in first_exp.artemis.alerts
        ] == [(a.id, a.type, a.detected_at) for a in second_exp.artemis.alerts]

    def test_different_scenario_seed_changes_channel_coins(self):
        _e1, a = run_chaos(seed=5, faults=RICH_PLAN)
        _e2, b = run_chaos(seed=6, faults=RICH_PLAN)
        assert outcome_digest(a) != outcome_digest(b)

    def test_golden_fault_digest_matches_pin(self):
        _exp, result = run_chaos(faults=RICH_PLAN)
        assert outcome_digest(result) == GOLDEN_FAULT_DIGEST

    def test_plan_is_not_mutated_by_the_run(self):
        before = RICH_PLAN.to_json()
        run_chaos(faults=RICH_PLAN)
        assert RICH_PLAN.to_json() == before
