"""Unit contracts of the flat array-of-struct prefix tree.

``FlatPrefixTree`` must be a drop-in for the node-object ``PrefixTree``:
same resolve semantics (most specific rule per tenant, sorted tenant
order, per-bucket exact flags), same incremental mutation surface (epoch
bump per batch, loud KeyError on unknown removal), plus the flat-specific
contracts — epoch-stamped slot recycling and the ``tree_bytes`` gauge.
Cross-implementation equivalence under randomized operation sequences is
property-tested separately in ``test_flattree_equivalence.py``.
"""

from __future__ import annotations

import pytest

from repro.core.config import ArtemisConfig, OwnedPrefix
from repro.net.prefix import Prefix
from repro.perf import COUNTERS
from repro.tenants import FlatPrefixTree, PrefixTree, TenantRegistry


def small_registry():
    registry = TenantRegistry()
    registry.add_tenant(
        "alpha",
        ArtemisConfig(
            [
                OwnedPrefix("10.0.0.0/16", [65001]),
                OwnedPrefix("10.0.1.0/24", [65001]),
            ]
        ),
    )
    registry.add_tenant(
        "beta", ArtemisConfig([OwnedPrefix("10.0.0.0/23", [65002])])
    )
    return registry


class TestResolveSemantics:
    def test_exact_and_covering_matches(self):
        tree = FlatPrefixTree(small_registry())
        matches = tree.resolve(Prefix.parse("10.0.0.0/16"))
        assert [(m[0].tenant, m[1]) for m in matches] == [("alpha", True)]
        matches = tree.resolve(Prefix.parse("10.0.0.0/24"))
        # Covered by alpha's /16 and beta's /23, exactly equal to neither.
        assert [(m[0].tenant, m[1]) for m in matches] == [
            ("alpha", False),
            ("beta", False),
        ]

    def test_most_specific_rule_per_tenant_wins(self):
        tree = FlatPrefixTree(small_registry())
        matches = tree.resolve(Prefix.parse("10.0.1.0/24"))
        by_tenant = {m[0].tenant: m for m in matches}
        # Alpha monitors both the /16 and the /24; the /24 must win.
        assert str(by_tenant["alpha"][0].prefix) == "10.0.1.0/24"
        assert by_tenant["alpha"][1] is True

    def test_results_sorted_by_tenant_name(self):
        registry = TenantRegistry()
        for name in ("zeta", "alpha", "mid"):
            registry.add_tenant(
                name, ArtemisConfig([OwnedPrefix("10.0.0.0/16", [65001])])
            )
        tree = FlatPrefixTree(registry)
        matches = tree.resolve(Prefix.parse("10.0.0.0/24"))
        assert [m[0].tenant for m in matches] == ["alpha", "mid", "zeta"]

    def test_miss_returns_shared_empty_list(self):
        tree = FlatPrefixTree(small_registry())
        one = tree.resolve(Prefix.parse("192.168.0.0/24"))
        two = tree.resolve(Prefix.parse("172.16.0.0/12"))
        assert one == [] and one is two  # no per-miss allocation

    def test_resolve_counts_trie_walks(self):
        tree = FlatPrefixTree(small_registry())
        COUNTERS.reset()
        tree.resolve(Prefix.parse("10.0.0.0/24"))
        tree.resolve(Prefix.parse("192.168.0.0/24"))
        assert COUNTERS.pipeline_trie_walks == 2

    def test_ipv6_full_length_prefix(self):
        registry = TenantRegistry()
        registry.add_tenant(
            "v6", ArtemisConfig([OwnedPrefix("2001:db8::/32", [65001])])
        )
        tree = FlatPrefixTree(registry)
        # A /128 probe exercises the deepest walk and the unsigned length
        # column (128 does not fit a signed byte).
        matches = tree.resolve(Prefix.parse("2001:db8::1/128"))
        assert [(m[0].tenant, m[1]) for m in matches] == [("v6", False)]

    def test_tenants_at_and_monitored_prefixes(self):
        registry = small_registry()
        flat = FlatPrefixTree(registry)
        node = PrefixTree(registry)
        assert flat.monitored_prefixes() == node.monitored_prefixes()
        for prefix in flat.monitored_prefixes():
            assert flat.tenants_at(prefix) == node.tenants_at(prefix)
        assert flat.tenants_at(Prefix.parse("10.99.0.0/16")) == []


class TestMutation:
    def test_epoch_bumps_once_per_batch(self):
        registry = small_registry()
        tree = FlatPrefixTree(registry)
        assert tree.epoch == 1  # one insert_rules batch at construction
        registry.add_tenant(
            "gamma", ArtemisConfig([OwnedPrefix("10.7.0.0/16", [65007])])
        )
        assert tree.epoch == 2
        registry.remove_tenant("gamma")
        assert tree.epoch == 3
        assert tree.num_rules == 3

    def test_remove_unknown_rule_is_loud(self):
        registry = small_registry()
        tree = FlatPrefixTree(registry)
        victim = registry.rules_for("beta")
        tree.remove_rules(victim)
        with pytest.raises(KeyError, match="not present in the prefix tree"):
            tree.remove_rules(victim)

    def test_slots_recycled_across_epochs(self):
        registry = small_registry()
        tree = FlatPrefixTree(registry)
        nodes_before = len(tree._left)
        pids_before = len(tree._pid_head)
        registry.add_tenant(
            "churn", ArtemisConfig([OwnedPrefix("10.50.0.0/16", [65050])])
        )
        grown_nodes = len(tree._left)
        grown_pids = len(tree._pid_head)
        # Free at epoch E, re-add at a later epoch: the freed node/pid/row
        # slots must be reused, not appended after.
        for _ in range(3):
            registry.remove_tenant("churn")
            registry.add_tenant(
                "churn", ArtemisConfig([OwnedPrefix("10.50.0.0/16", [65050])])
            )
        assert len(tree._left) == grown_nodes
        assert len(tree._pid_head) == grown_pids
        assert grown_nodes > nodes_before and grown_pids > pids_before

    def test_slot_never_recycled_within_its_epoch(self):
        tree = FlatPrefixTree()
        # Freed at the current epoch: not yet reusable.
        tree._free_pids.append((tree.epoch, 7))
        assert tree._alloc(tree._free_pids) == -1
        tree.epoch += 1
        assert tree._alloc(tree._free_pids) == 7

    def test_size_tracks_distinct_prefixes(self):
        registry = small_registry()
        tree = FlatPrefixTree(registry)
        node = PrefixTree(registry)
        assert len(tree) == len(node) == 3
        registry.remove_tenant("alpha")
        assert len(tree) == len(node) == 1


class TestMemoryAccounting:
    def test_nbytes_positive_and_refreshes_gauge(self):
        COUNTERS.reset()
        tree = FlatPrefixTree(small_registry())
        assert tree.nbytes() > 0
        assert COUNTERS.tree_bytes >= tree.nbytes()

    def test_flat_layout_beats_node_objects_at_scale(self):
        import sys

        from repro.tenants.synth import build_synth_registry

        origins = {Prefix.parse("10.0.0.0/24"): 65001}
        registry = build_synth_registry(
            origins, num_tenants=20, num_prefixes=5000
        )
        flat = FlatPrefixTree(registry)
        node = PrefixTree(registry)
        # Measure the node tree's storage: every _Node object, its children
        # list, and each stored bucket list (rule/prefix objects excluded on
        # both sides — they are registry-owned either way).
        node_bytes = 0
        stack = list(node._trie._roots.values())
        while stack:
            current = stack.pop()
            node_bytes += sys.getsizeof(current)
            node_bytes += sys.getsizeof(current.children)
            if current.has_value:
                node_bytes += sys.getsizeof(current.value)
            stack.extend(c for c in current.children if c is not None)
        assert flat.nbytes() * 3 <= node_bytes
