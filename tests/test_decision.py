"""Tests for the BGP decision process."""

from repro.bgp.decision import better, preference_key, rank, select_best
from repro.bgp.messages import ORIGIN_EGP, ORIGIN_IGP
from repro.bgp.route import Route
from repro.net.prefix import Prefix

P23 = Prefix.parse("10.0.0.0/23")


def route(path, peer, lp=100, origin=ORIGIN_IGP, at=0.0):
    return Route(P23, path, peer, lp, origin_attr=origin, learned_at=at)


class TestOrdering:
    def test_local_pref_dominates_path_length(self):
        customer = route([5, 6, 7, 8], peer=5, lp=300)
        provider = route([9, 8], peer=9, lp=100)
        assert better(customer, provider)
        assert select_best([provider, customer]) is customer

    def test_shorter_path_wins_at_equal_pref(self):
        short = route([5, 8], peer=5)
        long = route([6, 7, 8], peer=6)
        assert select_best([long, short]) is short

    def test_origin_attr_tiebreak(self):
        igp = route([5, 8], peer=5, origin=ORIGIN_IGP)
        egp = route([6, 8], peer=6, origin=ORIGIN_EGP)
        assert select_best([egp, igp]) is igp

    def test_older_route_preferred(self):
        old = route([5, 8], peer=5, at=1.0)
        new = route([6, 8], peer=6, at=2.0)
        assert select_best([new, old]) is old

    def test_lowest_peer_asn_final_tiebreak(self):
        a = route([5, 8], peer=5)
        b = route([6, 8], peer=6)
        assert select_best([b, a]) is a

    def test_local_route_beats_everything(self):
        local = Route.local(P23)
        learned = route([5, 8], peer=5, lp=300)
        assert select_best([learned, local]) is local

    def test_empty_candidates(self):
        assert select_best([]) is None

    def test_single_candidate(self):
        only = route([5, 8], peer=5)
        assert select_best([only]) is only


class TestRank:
    def test_rank_orders_best_first(self):
        best = route([5, 8], peer=5, lp=300)
        middle = route([6, 8], peer=6, lp=200)
        worst = route([7, 8, 9], peer=7, lp=200)
        assert rank([worst, best, middle]) == [best, middle, worst]

    def test_preference_key_total_order(self):
        routes = [
            route([5, 8], peer=5, lp=300),
            route([6, 8], peer=6, lp=200),
            route([7, 8], peer=7, lp=200, at=5.0),
        ]
        keys = [preference_key(r) for r in routes]
        assert keys == sorted(keys)
