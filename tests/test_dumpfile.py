"""Tests for feed-event dump files and offline replay."""

import io

import pytest
from hypothesis import given, strategies as st

from repro.core.config import ArtemisConfig, OwnedPrefix
from repro.core.detection import DetectionService
from repro.errors import FeedError
from repro.feeds.dumpfile import (
    FeedRecorder,
    format_event,
    parse_event,
    read_events,
    write_events,
)
from repro.feeds.events import FeedEvent
from repro.net.prefix import Prefix


def P(text):
    return Prefix.parse(text)


def make_event(kind="A", prefix="10.0.0.0/23", path=(3, 2, 666), t=10.0):
    return FeedEvent(
        source="ris", collector="rrc00", vantage_asn=3, kind=kind,
        prefix=P(prefix), as_path=path, observed_at=t - 1.5, delivered_at=t,
    )


class TestLineFormat:
    def test_roundtrip_announce(self):
        event = make_event()
        back = parse_event(format_event(event))
        assert back.kind == event.kind
        assert back.prefix == event.prefix
        assert back.as_path == event.as_path
        assert back.observed_at == event.observed_at
        assert back.delivered_at == event.delivered_at

    def test_roundtrip_withdraw(self):
        event = make_event(kind="W", path=())
        back = parse_event(format_event(event))
        assert back.kind == "W"
        assert back.as_path == ()

    def test_roundtrip_exact_floats(self):
        event = make_event(t=123.456789012345)
        assert parse_event(format_event(event)).delivered_at == event.delivered_at

    @pytest.mark.parametrize(
        "bad",
        [
            "A|ris|c0|3|10.0.0.0/23|3 2 1|1.0",          # too few fields
            "Z|ris|c0|3|10.0.0.0/23|3 2 1|1.0|2.0",      # bad kind
            "A|ris|c0|x|10.0.0.0/23|3 2 1|1.0|2.0",      # bad vantage
            "A|ris|c0|3|10.0.0.0/23|3 2 1|one|2.0",      # bad timestamp
        ],
    )
    def test_malformed_lines(self, bad):
        with pytest.raises(FeedError):
            parse_event(bad)


class TestFileIO:
    def test_write_read_roundtrip(self, tmp_path):
        path = str(tmp_path / "dump.txt")
        events = [make_event(t=float(t)) for t in range(5, 10)]
        assert write_events(path, events) == 5
        loaded = list(read_events(path))
        assert [e.delivered_at for e in loaded] == [e.delivered_at for e in events]

    def test_stream_objects(self):
        buffer = io.StringIO()
        write_events(buffer, [make_event()])
        buffer.seek(0)
        assert len(list(read_events(buffer))) == 1

    def test_comments_and_blanks_skipped(self):
        text = "# header\n\n" + format_event(make_event()) + "\n"
        assert len(list(read_events(io.StringIO(text)))) == 1


class TestRecorder:
    def test_records_from_live_source(self, net7):
        from repro.feeds.ris import RISLiveStream
        from repro.sim.latency import Constant

        stream = RISLiveStream.deploy(net7, [3, 4], seed=0, latency=Constant(1.0))
        recorder = FeedRecorder()
        stream.subscribe(recorder)
        net7.announce(6, "10.0.0.0/23")
        net7.run_until_converged()
        net7.run_for(5.0)
        assert len(recorder) > 0

    def test_save_load(self, tmp_path):
        recorder = FeedRecorder()
        recorder.events = [make_event(t=1.0), make_event(t=2.0)]
        path = str(tmp_path / "rec.txt")
        recorder.save(path)
        loaded = FeedRecorder.load(path)
        assert len(loaded) == 2

    def test_offline_replay_detects(self):
        # Archive a hijack observation, re-run detection offline.
        recorder = FeedRecorder()
        recorder.events = [
            make_event(path=(3, 64500), t=1.0),   # legit
            make_event(path=(3, 666), t=2.0),     # hijack evidence
        ]
        config = ArtemisConfig([OwnedPrefix("10.0.0.0/23", {64500})])
        detection = DetectionService(config)
        assert recorder.replay_into(detection.handle_event) == 2
        assert len(detection.alert_manager) == 1
        assert detection.alert_manager.alerts[0].offender_asn == 666

    def test_replay_orders_by_delivery(self):
        recorder = FeedRecorder()
        recorder.events = [make_event(t=5.0), make_event(t=1.0)]
        seen = []
        recorder.replay_into(lambda e: seen.append(e.delivered_at))
        assert seen == [1.0, 5.0]


path_elements = st.lists(
    st.integers(min_value=1, max_value=(1 << 32) - 1), min_size=1, max_size=6
)


@given(
    path_elements,
    st.integers(min_value=0, max_value=(1 << 32) - 1),
    st.integers(min_value=0, max_value=32),
    st.floats(min_value=0, max_value=1e7, allow_nan=False),
)
def test_roundtrip_property(path, value, length, observed):
    event = FeedEvent(
        source="src", collector="col", vantage_asn=path[0], kind="A",
        prefix=Prefix(value, length, 4), as_path=tuple(path),
        observed_at=observed, delivered_at=observed + 1.25,
    )
    back = parse_event(format_event(event))
    assert back.prefix == event.prefix
    assert back.as_path == event.as_path
    assert back.observed_at == event.observed_at
