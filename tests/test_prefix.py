"""Unit and property tests for repro.net.prefix."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import PrefixError
from repro.net.prefix import Address, Prefix


# ----------------------------------------------------------------- Address

class TestAddressParsing:
    def test_parse_v4(self):
        address = Address.parse("10.0.0.1")
        assert address.version == 4
        assert address.value == (10 << 24) | 1

    def test_parse_v4_boundaries(self):
        assert Address.parse("0.0.0.0").value == 0
        assert Address.parse("255.255.255.255").value == (1 << 32) - 1

    def test_str_roundtrip_v4(self):
        assert str(Address.parse("192.168.1.200")) == "192.168.1.200"

    @pytest.mark.parametrize(
        "bad", ["10.0.0", "10.0.0.0.0", "256.0.0.1", "1.2.3.04", "a.b.c.d", ""]
    )
    def test_invalid_v4(self, bad):
        with pytest.raises(PrefixError):
            Address.parse(bad)

    def test_parse_v6_full(self):
        address = Address.parse("2001:0db8:0000:0000:0000:0000:0000:0001")
        assert address.version == 6
        assert str(address) == "2001:db8::1"

    def test_parse_v6_compressed(self):
        assert Address.parse("::").value == 0
        assert Address.parse("::1").value == 1
        assert Address.parse("2001:db8::").value == 0x20010DB8 << 96

    @pytest.mark.parametrize("bad", ["::1::2", "2001:db8", "1:2:3:4:5:6:7:8:9", ":::"])
    def test_invalid_v6(self, bad):
        with pytest.raises(PrefixError):
            Address.parse(bad)

    def test_v6_str_compresses_longest_zero_run(self):
        assert str(Address.parse("1:0:0:2:0:0:0:3")) == "1:0:0:2::3"

    def test_ordering_and_hash(self):
        a = Address.parse("10.0.0.1")
        b = Address.parse("10.0.0.2")
        v6 = Address.parse("::1")
        assert a < b
        assert a < v6  # version orders first
        assert hash(a) == hash(Address.parse("10.0.0.1"))

    def test_value_range_checked(self):
        with pytest.raises(PrefixError):
            Address(1 << 32, version=4)
        with pytest.raises(PrefixError):
            Address(-1, version=4)
        with pytest.raises(PrefixError):
            Address(0, version=5)


# ------------------------------------------------------------------ Prefix

class TestPrefixBasics:
    def test_parse(self):
        prefix = Prefix.parse("10.0.0.0/23")
        assert prefix.length == 23
        assert str(prefix) == "10.0.0.0/23"

    def test_host_bits_zeroed(self):
        assert Prefix.parse("10.0.1.77/23") == Prefix.parse("10.0.0.0/23")

    def test_bare_address_is_host_prefix(self):
        assert Prefix.parse("10.0.0.1").length == 32
        assert Prefix.parse("::1").length == 128

    @pytest.mark.parametrize("bad", ["10.0.0.0/33", "10.0.0.0/x", "::/129"])
    def test_invalid(self, bad):
        with pytest.raises(PrefixError):
            Prefix.parse(bad)

    def test_num_addresses(self):
        assert Prefix.parse("10.0.0.0/23").num_addresses == 512
        assert Prefix.parse("10.0.0.0/32").num_addresses == 1

    def test_bit_at(self):
        prefix = Prefix.parse("128.0.0.0/1")
        assert prefix.bit_at(0) == 1
        with pytest.raises(PrefixError):
            prefix.bit_at(32)

    def test_equality_and_hash(self):
        a = Prefix.parse("10.0.0.0/24")
        assert a == Prefix.parse("10.0.0.0/24")
        assert a != Prefix.parse("10.0.0.0/23")
        assert hash(a) == hash(Prefix.parse("10.0.0.0/24"))

    def test_ordering_groups_supernets_first(self):
        p23 = Prefix.parse("10.0.0.0/23")
        p24 = Prefix.parse("10.0.0.0/24")
        p24b = Prefix.parse("10.0.1.0/24")
        assert sorted([p24b, p24, p23]) == [p23, p24, p24b]


class TestContainment:
    def test_contains_equal(self):
        p = Prefix.parse("10.0.0.0/23")
        assert p.contains(p)

    def test_contains_more_specific(self):
        assert Prefix.parse("10.0.0.0/23").contains(Prefix.parse("10.0.1.0/24"))

    def test_not_contains_sibling(self):
        assert not Prefix.parse("10.0.0.0/24").contains(Prefix.parse("10.0.1.0/24"))

    def test_not_contains_shorter(self):
        assert not Prefix.parse("10.0.0.0/24").contains(Prefix.parse("10.0.0.0/23"))

    def test_version_mismatch(self):
        assert not Prefix.parse("::/0").contains(Prefix.parse("10.0.0.0/8"))

    def test_default_route_contains_everything_v4(self):
        default = Prefix.parse("0.0.0.0/0")
        assert default.contains(Prefix.parse("203.0.113.0/24"))

    def test_is_more_specific_of(self):
        assert Prefix.parse("10.0.0.0/24").is_more_specific_of(
            Prefix.parse("10.0.0.0/23")
        )
        assert not Prefix.parse("10.0.0.0/23").is_more_specific_of(
            Prefix.parse("10.0.0.0/23")
        )

    def test_overlaps(self):
        a = Prefix.parse("10.0.0.0/23")
        b = Prefix.parse("10.0.1.0/24")
        c = Prefix.parse("10.0.2.0/24")
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)

    def test_contains_address(self):
        p = Prefix.parse("10.0.0.0/23")
        assert p.contains_address("10.0.1.255")
        assert not p.contains_address("10.0.2.0")
        assert not p.contains_address("::1")


class TestSplitAndDeaggregate:
    def test_split(self):
        low, high = Prefix.parse("10.0.0.0/23").split()
        assert low == Prefix.parse("10.0.0.0/24")
        assert high == Prefix.parse("10.0.1.0/24")

    def test_split_host_prefix_fails(self):
        with pytest.raises(PrefixError):
            Prefix.parse("10.0.0.1/32").split()

    def test_deaggregate_default_one_level(self):
        children = Prefix.parse("10.0.0.0/23").deaggregate()
        assert children == [
            Prefix.parse("10.0.0.0/24"),
            Prefix.parse("10.0.1.0/24"),
        ]

    def test_deaggregate_deeper(self):
        children = Prefix.parse("10.0.0.0/22").deaggregate(24)
        assert len(children) == 4
        assert children[0] == Prefix.parse("10.0.0.0/24")
        assert children[-1] == Prefix.parse("10.0.3.0/24")

    def test_deaggregate_invalid_targets(self):
        p = Prefix.parse("10.0.0.0/24")
        with pytest.raises(PrefixError):
            p.deaggregate(24)
        with pytest.raises(PrefixError):
            p.deaggregate(23)
        with pytest.raises(PrefixError):
            p.deaggregate(33)

    def test_subnets_requires_longer(self):
        with pytest.raises(PrefixError):
            list(Prefix.parse("10.0.0.0/24").subnets(23))

    def test_supernet(self):
        assert Prefix.parse("10.0.1.0/24").supernet() == Prefix.parse("10.0.0.0/23")
        assert Prefix.parse("10.0.1.0/24").supernet(16) == Prefix.parse("10.0.0.0/16")
        with pytest.raises(PrefixError):
            Prefix.parse("10.0.0.0/24").supernet(25)

    def test_common_prefix_length(self):
        a = Prefix.parse("10.0.0.0/24")
        b = Prefix.parse("10.0.1.0/24")
        assert a.common_prefix_length(b) == 23
        assert a.common_prefix_length(Prefix.parse("::/0")) == 0


# --------------------------------------------------------------- properties

octet = st.integers(min_value=0, max_value=255)


@st.composite
def v4_prefixes(draw):
    value = draw(st.integers(min_value=0, max_value=(1 << 32) - 1))
    length = draw(st.integers(min_value=0, max_value=32))
    return Prefix(value, length, 4)


@given(v4_prefixes())
def test_parse_str_roundtrip(prefix):
    assert Prefix.parse(str(prefix)) == prefix


@given(v4_prefixes())
def test_split_children_partition_parent(prefix):
    if prefix.length >= 32:
        return
    low, high = prefix.split()
    assert prefix.contains(low) and prefix.contains(high)
    assert not low.overlaps(high)
    assert low.num_addresses + high.num_addresses == prefix.num_addresses

@given(v4_prefixes(), v4_prefixes())
def test_containment_antisymmetry(a, b):
    if a.contains(b) and b.contains(a):
        assert a == b


@given(v4_prefixes(), v4_prefixes())
def test_overlap_symmetry(a, b):
    assert a.overlaps(b) == b.overlaps(a)


@given(v4_prefixes(), st.integers(min_value=0, max_value=32))
def test_supernet_contains(prefix, new_length):
    if new_length > prefix.length:
        return
    assert prefix.supernet(new_length).contains(prefix)
