"""Tests for the ARTEMIS monitoring service."""

import pytest

from repro.core.config import ArtemisConfig, OwnedPrefix
from repro.core.monitoring import MonitoringService, VantageState
from repro.feeds.events import FeedEvent
from repro.net.prefix import Prefix


def P(text):
    return Prefix.parse(text)


def event(prefix, path, t, vantage=3, kind="A", source="ris"):
    return FeedEvent(
        source=source, collector="c0", vantage_asn=vantage, kind=kind,
        prefix=P(prefix), as_path=tuple(path),
        observed_at=t - 0.5, delivered_at=t,
    )


def make_service():
    config = ArtemisConfig([OwnedPrefix("10.0.0.0/23", {64500})])
    return MonitoringService(config)


class TestVantageState:
    def test_probe_origins_longest_match(self):
        state = VantageState(3)
        state.apply(event("10.0.0.0/23", (3, 64500), t=1.0))
        assert state.probe_origins(P("10.0.0.0/23")) == (64500, 64500)
        state.apply(event("10.0.0.0/24", (3, 666), t=2.0))
        # The hijacked /24 wins longest-match on its half only.
        assert state.probe_origins(P("10.0.0.0/23")) == (666, 64500)

    def test_withdraw_removes_route(self):
        state = VantageState(3)
        state.apply(event("10.0.0.0/23", (3, 64500), t=1.0))
        state.apply(event("10.0.0.0/23", (), t=2.0, kind="W"))
        assert state.probe_origins(P("10.0.0.0/23")) == (None, None)
        assert state.origin_for_address(P("10.0.0.0/24").network) is None

    def test_routes_listing(self):
        state = VantageState(3)
        state.apply(event("10.0.0.0/23", (3, 64500), t=1.0))
        assert state.routes() == [(P("10.0.0.0/23"), 64500, (3, 64500))]


class TestMonitoringService:
    def test_hijack_flips_vantage(self):
        service = make_service()
        service.handle_event(event("10.0.0.0/23", (3, 64500), t=1.0))
        assert service.fraction_legitimate(P("10.0.0.0/23")) == 1.0
        service.handle_event(event("10.0.0.0/23", (3, 666), t=2.0))
        assert service.fraction_legitimate(P("10.0.0.0/23")) == 0.0
        assert service.hijacked_vantages(P("10.0.0.0/23")) == [3]

    def test_fraction_across_vantages(self):
        service = make_service()
        service.handle_event(event("10.0.0.0/23", (3, 64500), t=1.0, vantage=3))
        service.handle_event(event("10.0.0.0/23", (4, 64500), t=1.5, vantage=4))
        service.handle_event(event("10.0.0.0/23", (5, 666), t=2.0, vantage=5))
        assert service.fraction_legitimate(P("10.0.0.0/23")) == pytest.approx(2 / 3)

    def test_mitigation_visible_via_more_specific(self):
        service = make_service()
        service.handle_event(event("10.0.0.0/23", (3, 666), t=1.0))
        assert service.fraction_legitimate(P("10.0.0.0/23")) == 0.0
        # De-aggregated /24s arrive: effective origin flips back.
        service.handle_event(event("10.0.0.0/24", (3, 64500), t=2.0))
        service.handle_event(event("10.0.1.0/24", (3, 64500), t=2.1))
        assert service.fraction_legitimate(P("10.0.0.0/23")) == 1.0

    def test_transitions_logged_once_per_flip(self):
        service = make_service()
        service.handle_event(event("10.0.0.0/23", (3, 64500), t=1.0))
        service.handle_event(event("10.0.0.0/23", (3, 2, 64500), t=2.0))  # same origin
        service.handle_event(event("10.0.0.0/23", (3, 666), t=3.0))
        origins = [origin for _t, _v, _p, origin in service.transitions]
        assert origins == [64500, 666]

    def test_fraction_series_replay(self):
        service = make_service()
        service.handle_event(event("10.0.0.0/23", (3, 64500), t=1.0, vantage=3))
        service.handle_event(event("10.0.0.0/23", (4, 64500), t=2.0, vantage=4))
        service.handle_event(event("10.0.0.0/23", (3, 666), t=3.0, vantage=3))
        # Half-recovered is still hijacked (representative = offender) ...
        service.handle_event(event("10.0.0.0/24", (3, 64500), t=4.0, vantage=3))
        # ... until both halves are covered by legit more-specifics.
        service.handle_event(event("10.0.1.0/24", (3, 64500), t=5.0, vantage=3))
        series = service.fraction_series(P("10.0.0.0/23"))
        assert series == [
            (1.0, 1.0),
            (2.0, 1.0),
            (3.0, 0.5),
            (5.0, 1.0),
        ]

    def test_unrelated_events_ignored_for_owned_view(self):
        service = make_service()
        service.handle_event(event("99.0.0.0/16", (3, 1), t=1.0))
        assert service.transitions == []

    def test_origin_by_vantage(self):
        service = make_service()
        service.handle_event(event("10.0.0.0/23", (3, 64500), t=1.0, vantage=3))
        service.handle_event(event("10.0.0.0/23", (4, 666), t=2.0, vantage=4))
        assert service.origin_by_vantage(P("10.0.0.0/23")) == {3: 64500, 4: 666}

    def test_fraction_empty_when_no_reports(self):
        service = make_service()
        assert service.fraction_legitimate(P("10.0.0.0/23")) == 0.0

    def test_live_subscription(self, net7):
        # End-to-end: monitoring fed by a real stream on a real network.
        from repro.feeds.ris import RISLiveStream
        from repro.sim.latency import Constant

        service = make_service()
        stream = RISLiveStream.deploy(net7, [3, 4], seed=0, latency=Constant(1.0))
        service.start([stream])
        net7.announce(6, "10.0.0.0/23")
        net7.run_until_converged()
        net7.run_for(5.0)
        # Vantages report the path origin 6 — not in the legit set {64500}.
        assert service.fraction_legitimate(P("10.0.0.0/23")) == 0.0
        assert set(service.vantages) == {3, 4}
        service.stop()
        assert not service.started
