"""Property test: single-tenant and multi-tenant verdicts never drift.

Both planes classify through the shared
:func:`repro.core.rules.classify_announcement` ladder, but each wraps it
in its own rule-selection machinery (``ArtemisConfig`` tries vs the
tenant ``PrefixTree``).  This test drives both with the same randomized
announcements — prefixes inside/outside/astride the owned space, paths
over legit and bogus ASNs, every corroboration state — and requires
byte-identical verdicts.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import ArtemisConfig, OwnedPrefix, OwnedSpace
from repro.core.detection import DetectionService
from repro.feeds.events import FeedEvent
from repro.net.prefix import Prefix
from repro.tenants.pipeline import classify_batch_verdicts
from repro.tenants.prefixtree import PrefixTree
from repro.tenants.registry import TenantRegistry

ADJACENCIES = {
    65001: {65010},
    65010: {65001, 100},
    100: {65010, 200},
    200: {100},
}


def build_config() -> ArtemisConfig:
    return ArtemisConfig(
        owned=[
            OwnedPrefix("10.0.0.0/23", {65001}, {65010}),
            OwnedPrefix("10.0.4.0/24", {65002}),
        ],
        owned_space=[OwnedSpace(Prefix.parse("10.0.0.0/21"), {65001})],
        adjacencies=ADJACENCIES,
        leak_sentinels={64999},
        auto_mitigate=False,
    )


CONFIG = build_config()
REGISTRY = TenantRegistry()
REGISTRY.add_tenant("t0", build_config())
TREE = PrefixTree(REGISTRY)

#: Mix of exact owned, nested, sibling-in-space, space-exact and foreign.
PREFIXES = [
    "10.0.0.0/23",
    "10.0.0.0/24",
    "10.0.1.0/24",
    "10.0.2.0/24",
    "10.0.4.0/24",
    "10.0.4.0/25",
    "10.0.6.0/24",
    "10.0.0.0/21",
    "11.0.0.0/24",
]

#: Legit origins/upstreams, known transit, the leak sentinel, strangers.
ASNS = [65001, 65002, 65010, 64999, 100, 200, 666]

PROBES = {"none": None, "healthy": lambda p: True, "unhealthy": lambda p: False}


@settings(max_examples=300, deadline=None)
@given(
    prefix=st.sampled_from(PREFIXES),
    path=st.lists(st.sampled_from(ASNS), min_size=1, max_size=5),
    vantage=st.sampled_from(ASNS + [1]),
    probe_kind=st.sampled_from(sorted(PROBES)),
)
def test_single_tenant_and_plane_verdicts_identical(
    prefix, path, vantage, probe_kind
):
    probe = PROBES[probe_kind]
    event = FeedEvent(
        source="ris",
        collector="rrc00",
        vantage_asn=vantage,
        kind="A",
        prefix=Prefix.parse(prefix),
        as_path=path,
        observed_at=1.0,
        delivered_at=2.0,
    )
    service = DetectionService(CONFIG)
    service.attach_corroborator(probe)
    single = service.classify(event)

    matches = TREE.resolve(event.prefix)
    plane = classify_batch_verdicts(
        matches, event.prefix, event.as_path, event.vantage_asn, probe=probe
    )

    if single is None:
        assert plane == ()
    else:
        alert_type, owned_prefix, offender = single
        assert len(plane) == 1
        rule, plane_type, plane_offender = plane[0]
        assert (plane_type, rule.prefix, plane_offender) == (
            alert_type,
            owned_prefix,
            offender,
        )
