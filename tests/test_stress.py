"""Correctness-under-load tests: bigger worlds, heavy event volumes, FIFO
guarantees — behaviours that only show up beyond toy sizes."""

import pytest

from repro.bgp.messages import single_announcement
from repro.bgp.session import ActivityTracker, Session
from repro.net.prefix import Prefix
from repro.sim.engine import Engine
from repro.sim.latency import Exponential, Uniform
from repro.sim.rng import SeededRNG
from repro.topology.generator import GeneratorConfig, generate_internet
from repro.internet.network import Network

from conftest import fast_network_config


def P(text):
    return Prefix.parse(text)


class TestEngineUnderLoad:
    def test_many_simultaneous_events_fire_in_creation_order(self):
        engine = Engine()
        order = []
        for index in range(2000):
            engine.schedule(1.0, order.append, index)
        engine.run()
        assert order == list(range(2000))

    def test_interleaved_cancel_under_load(self):
        engine = Engine()
        fired = []
        handles = [
            engine.schedule(1.0 + (i % 7) * 0.1, fired.append, i)
            for i in range(1000)
        ]
        for handle in handles[::2]:
            handle.cancel()
        engine.run()
        assert sorted(fired) == list(range(1, 1000, 2))

    def test_deep_nested_scheduling(self):
        engine = Engine()
        counter = [0]

        def chain():
            counter[0] += 1
            if counter[0] < 5000:
                engine.schedule(0.01, chain)

        engine.schedule(0.01, chain)
        engine.run()
        assert counter[0] == 5000


class TestSessionFifo:
    class Recorder:
        def __init__(self, asn):
            self.asn = asn
            self.received = []

        def deliver(self, sender_asn, message):
            self.received.append(message.announcements[0].prefix)

    def test_messages_never_reorder_despite_random_delays(self):
        # TCP semantics: per-direction FIFO even with wildly varying delay
        # samples per message.
        engine = Engine()
        tracker = ActivityTracker()
        sender = self.Recorder(1)
        receiver = self.Recorder(2)
        session = Session(
            engine, sender, receiver,
            delay=Exponential(1.0), rng=SeededRNG(3), tracker=tracker,
        )
        sent = []
        for index in range(200):
            prefix = P(f"10.{index // 250}.{index % 250}.0/24")
            sent.append(prefix)
            session.send(1, single_announcement(prefix, [1]))
        engine.run()
        assert receiver.received == sent

    def test_bidirectional_fifo_independent(self):
        engine = Engine()
        a = self.Recorder(1)
        b = self.Recorder(2)
        session = Session(engine, a, b, delay=Uniform(0.1, 5.0), rng=SeededRNG(4))
        forward = [P(f"10.0.{i}.0/24") for i in range(50)]
        backward = [P(f"10.1.{i}.0/24") for i in range(50)]
        for f_prefix, b_prefix in zip(forward, backward):
            session.send(1, single_announcement(f_prefix, [1]))
            session.send(2, single_announcement(b_prefix, [2]))
        engine.run()
        assert b.received == forward
        assert a.received == backward


@pytest.mark.slow
class TestLargeWorld:
    def test_800_as_internet_converges_and_mitigates(self):
        graph = generate_internet(
            GeneratorConfig(num_tier1=10, num_tier2=120, num_stubs=670), seed=1
        )
        network = Network(graph, config=fast_network_config(), seed=1)
        victim = graph.stubs()[0]
        hijacker = graph.stubs()[-1]
        network.announce(victim, "10.0.0.0/23")
        network.run_until_converged()
        assert network.fraction_routing_to("10.0.0.1", victim) == 1.0
        network.announce(hijacker, "10.0.0.0/23")
        network.run_until_converged()
        hijacked = network.fraction_routing_to("10.0.0.1", hijacker)
        assert 0.0 < hijacked < 1.0
        network.announce(victim, "10.0.0.0/24")
        network.announce(victim, "10.0.1.0/24")
        network.run_until_converged()
        assert network.fraction_routing_to("10.0.0.1", victim) == 1.0
        # RIB sanity at scale: every speaker holds ≤ the 4 live prefixes.
        for asn in network.asns():
            assert len(network.speaker(asn).loc_rib) <= 4
