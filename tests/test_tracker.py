"""Tests for the ground-truth OriginTracker."""

import pytest

from repro.internet.tracker import OriginTracker
from repro.net.prefix import Prefix


def P(text):
    return Prefix.parse(text)


class TestTracking:
    def test_initial_state_no_routes(self, net7):
        tracker = OriginTracker(net7, "10.0.0.0/23")
        assert tracker.fraction_routing_to(6) == 0.0
        assert set(tracker.tracked_asns()) == set(net7.asns())

    def test_probes_cover_both_halves(self, net7):
        tracker = OriginTracker(net7, "10.0.0.0/23")
        assert [str(p) for p in tracker.probes] == ["10.0.0.0", "10.0.1.0"]

    def test_flips_recorded_on_announce(self, net7):
        tracker = OriginTracker(net7, "10.0.0.0/23")
        net7.announce(6, "10.0.0.0/23")
        net7.run_until_converged()
        assert tracker.all_route_to({6})
        assert len(tracker.flips) >= len(net7.asns())  # each AS flipped twice probes

    def test_unrelated_prefixes_ignored(self, net7):
        tracker = OriginTracker(net7, "10.0.0.0/23")
        net7.announce(6, "99.0.0.0/16")
        net7.run_until_converged()
        assert tracker.flips == []

    def test_partial_adoption_fraction(self, net7):
        tracker = OriginTracker(net7, "10.0.0.0/23")
        net7.announce(6, "10.0.0.0/23")
        net7.run_until_converged()
        net7.announce(7, "10.0.0.0/23")
        net7.run_until_converged()
        legit = tracker.fraction_routing_to(6)
        hijacked = tracker.fraction_routing_to(7)
        assert 0.0 < legit < 1.0
        assert 0.0 < hijacked < 1.0
        assert legit + hijacked == pytest.approx(1.0)

    def test_ases_routing_to(self, net7):
        tracker = OriginTracker(net7, "10.0.0.0/23")
        net7.announce(6, "10.0.0.0/23")
        net7.run_until_converged()
        assert tracker.ases_routing_to(6) == net7.asns()

    def test_exclude(self, net7):
        tracker = OriginTracker(net7, "10.0.0.0/23", exclude_asns=[7])
        net7.announce(6, "10.0.0.0/23")
        net7.run_until_converged()
        assert 7 not in tracker.tracked_asns()

    def test_mixed_probe_origins_not_fully_legit(self, net7):
        tracker = OriginTracker(net7, "10.0.0.0/23")
        # Victim announces only one half; other half goes to another AS.
        net7.announce(6, "10.0.0.0/24")
        net7.announce(7, "10.0.1.0/24")
        net7.run_until_converged()
        assert tracker.fraction_routing_to(6) == 0.0  # nobody has BOTH halves on 6
        assert tracker.fraction_routing_to({6, 7}) == 1.0


class TestReplay:
    def test_fraction_series_starts_at_start_time(self, net7):
        tracker = OriginTracker(net7, "10.0.0.0/23")
        net7.announce(6, "10.0.0.0/23")
        net7.run_until_converged()
        start = net7.engine.now
        series = tracker.fraction_series({6}, start_time=start)
        assert series[0] == (start, 1.0)

    def test_fraction_series_monotone_for_single_announce(self, net7):
        tracker = OriginTracker(net7, "10.0.0.0/23")
        net7.announce(6, "10.0.0.0/23")
        net7.run_until_converged()
        series = tracker.fraction_series({6}, start_time=0.0)
        fractions = [f for _t, f in series]
        assert fractions == sorted(fractions)
        # The announce happens at t=0 exactly, so the t=0 snapshot already
        # includes the victim's own flip; everyone else joins later.
        assert fractions[0] < 0.5 and fractions[-1] == 1.0

    def test_first_time_all_route_to(self, net7):
        tracker = OriginTracker(net7, "10.0.0.0/23")
        net7.announce(6, "10.0.0.0/23")
        net7.run_until_converged()
        when = tracker.first_time_all_route_to({6}, since=0.0)
        assert when is not None
        assert when <= net7.engine.now
        # The tracker's own flip log confirms nothing changed after `when`.
        assert all(t <= when for t, _a, _i, _o in tracker.flips)

    def test_first_time_none_when_never(self, net7):
        tracker = OriginTracker(net7, "10.0.0.0/23")
        net7.announce(6, "10.0.0.0/23")
        net7.run_until_converged()
        assert tracker.first_time_all_route_to({99}, since=0.0) is None

    def test_since_respected(self, net7):
        tracker = OriginTracker(net7, "10.0.0.0/23")
        net7.announce(6, "10.0.0.0/23")
        net7.run_until_converged()
        converged_at = tracker.first_time_all_route_to({6}, since=0.0)
        later = converged_at + 100.0
        net7.run_for(200.0)
        # Asking "since" after convergence returns the ask time (state
        # already satisfied the predicate).
        assert tracker.first_time_all_route_to({6}, since=later) == later

    def test_state_reconstruction_mid_history(self, net7):
        tracker = OriginTracker(net7, "10.0.0.0/23")
        net7.announce(6, "10.0.0.0/23")
        net7.run_until_converged()
        mid_time = net7.engine.now
        net7.run_for(5.0)  # separate the hijack timestamp from mid_time
        net7.announce(7, "10.0.0.0/23")
        net7.run_until_converged()
        # Full recovery fraction at mid_time (before the hijack) was 1.0.
        series = tracker.fraction_series({6}, start_time=mid_time)
        assert series[0][1] == 1.0
        assert series[-1][1] < 1.0


class TestLateAttachment:
    def test_attached_stub_tracked(self, net7):
        tracker = OriginTracker(net7, "10.0.0.0/23")
        speaker = net7.attach_stub(100, [3])
        tracker.track_speaker(speaker)
        net7.announce(6, "10.0.0.0/23")
        net7.run_until_converged()
        assert 100 in tracker.tracked_asns()
        assert tracker.all_route_to({6})
