"""Documentation quality gates: every module and public symbol documented."""

import importlib
import inspect
import pathlib
import pkgutil

import pytest

import repro

SRC = pathlib.Path(repro.__file__).parent


def all_modules():
    names = ["repro"]
    for info in pkgutil.walk_packages([str(SRC)], prefix="repro."):
        if info.name.endswith("__main__"):
            continue  # importing it would execute the CLI
        names.append(info.name)
    return sorted(names)


@pytest.mark.parametrize("name", all_modules())
def test_module_has_docstring(name):
    module = importlib.import_module(name)
    assert module.__doc__ and module.__doc__.strip(), f"{name} undocumented"


@pytest.mark.parametrize("name", all_modules())
def test_public_classes_and_functions_documented(name):
    module = importlib.import_module(name)
    for attr_name in dir(module):
        if attr_name.startswith("_"):
            continue
        obj = getattr(module, attr_name)
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != name:
            continue  # re-export; documented at its home
        assert obj.__doc__ and obj.__doc__.strip(), (
            f"{name}.{attr_name} has no docstring"
        )


def test_readme_mentions_core_commands():
    readme = (SRC.parent.parent / "README.md").read_text()
    for needle in ("pytest tests/", "benchmarks/", "quickstart", "DESIGN.md"):
        assert needle in readme


def test_design_doc_covers_every_bench():
    design = (SRC.parent.parent / "DESIGN.md").read_text()
    bench_dir = SRC.parent.parent / "benchmarks"
    for bench in bench_dir.glob("test_*.py"):
        if bench.name == "test_perf_micro.py":
            continue  # listed as the perf-guardrail row
        assert bench.name in design, f"{bench.name} missing from DESIGN.md"
