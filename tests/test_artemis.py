"""Tests for the wired Artemis application."""

import pytest

from repro.core.artemis import Artemis
from repro.core.config import ArtemisConfig, OwnedPrefix
from repro.errors import ConfigError
from repro.feeds.periscope import LookingGlass, PeriscopeAPI
from repro.feeds.ris import RISLiveStream
from repro.net.prefix import Prefix
from repro.sdn.controller import BGPController
from repro.sim.latency import Constant
from repro.sim.rng import SeededRNG


def P(text):
    return Prefix.parse(text)


@pytest.fixture
def setup(net7):
    """Victim = AS6, ARTEMIS over a RIS stream + 2 LGs, hijacker = AS7."""
    stream = RISLiveStream.deploy(net7, [3, 4], seed=0, latency=Constant(1.0))
    lgs = [
        LookingGlass(f"lg-{asn}", net7.speaker(asn), net7.engine,
                     query_delay=Constant(0.2), min_query_interval=0.0,
                     rng=SeededRNG(asn))
        for asn in (1, 5)
    ]
    periscope = PeriscopeAPI(net7.engine, lgs, poll_interval=10.0, rng=SeededRNG(0))
    controller = BGPController(
        net7.engine, [net7.speaker(6)],
        programming_delay=Constant(15.0), rng=SeededRNG(9),
    )
    config = ArtemisConfig([OwnedPrefix("10.0.0.0/23", {6})])
    artemis = Artemis(config, controller, sources=[stream], periscope=periscope)
    return net7, artemis


class TestWiring:
    def test_needs_sources(self, net7):
        controller = BGPController(net7.engine, [net7.speaker(6)])
        config = ArtemisConfig([OwnedPrefix("10.0.0.0/23", {6})])
        with pytest.raises(ConfigError):
            Artemis(config, controller, sources=[])

    def test_periscope_added_to_sources(self, setup):
        _net, artemis = setup
        assert artemis.periscope in artemis.sources

    def test_start_stop_idempotent(self, setup):
        _net, artemis = setup
        artemis.start()
        artemis.start()
        assert artemis.running
        assert artemis.periscope.polling
        artemis.stop()
        artemis.stop()
        assert not artemis.running
        assert not artemis.periscope.polling


class TestEndToEnd:
    def test_legit_announcement_no_alert(self, setup):
        net, artemis = setup
        artemis.start()
        net.announce(6, "10.0.0.0/23")
        net.run_until_converged()
        net.run_for(30.0)
        assert artemis.alerts == []

    def test_hijack_detected_and_auto_mitigated(self, setup):
        net, artemis = setup
        artemis.start()
        net.announce(6, "10.0.0.0/23")
        net.run_until_converged()
        net.run_for(15.0)
        hijack_time = net.engine.now
        net.announce(7, "10.0.0.0/23")
        net.run_until_converged()
        net.run_for(30.0)
        assert len(artemis.alerts) == 1
        alert = artemis.alerts[0]
        assert alert.type.value == "exact-origin"
        assert alert.offender_asn == 7
        assert alert.detected_at > hijack_time
        # Auto-mitigation programmed the de-aggregated /24s.
        assert len(artemis.actions) == 1
        action = artemis.actions[0]
        assert action.prefixes == [P("10.0.0.0/24"), P("10.0.1.0/24")]
        assert action.announced_at is not None
        net.run_until_converged()
        assert net.fraction_routing_to("10.0.0.7", 6) == 1.0
        assert net.fraction_routing_to("10.0.1.7", 6) == 1.0

    def test_auto_mitigate_disabled(self, net7):
        # Vantages at 4 and 5 (the hijacker AS7's providers) see the bogus
        # route for sure.
        stream = RISLiveStream.deploy(net7, [4, 5], seed=0, latency=Constant(1.0))
        controller = BGPController(net7.engine, [net7.speaker(6)])
        config = ArtemisConfig(
            [OwnedPrefix("10.0.0.0/23", {6})], auto_mitigate=False
        )
        artemis = Artemis(config, controller, sources=[stream])
        artemis.start()
        net7.announce(6, "10.0.0.0/23")
        net7.run_until_converged()
        net7.announce(7, "10.0.0.0/23")
        net7.run_until_converged()
        net7.run_for(30.0)
        assert len(artemis.alerts) == 1
        assert artemis.actions == []

    def test_alert_observer_called_after_mitigation_trigger(self, setup):
        net, artemis = setup
        statuses = []
        artemis.on_alert(lambda alert: statuses.append(alert.status.value))
        artemis.start()
        net.announce(6, "10.0.0.0/23")
        net.run_until_converged()
        net.announce(7, "10.0.0.0/23")
        net.run_until_converged()
        net.run_for(30.0)
        assert statuses == ["mitigating"]

    def test_monitoring_runs_in_parallel(self, setup):
        net, artemis = setup
        artemis.start()
        net.announce(6, "10.0.0.0/23")
        net.run_until_converged()
        net.run_for(15.0)
        net.announce(7, "10.0.0.0/23")
        net.run_until_converged()
        net.run_for(60.0)
        net.run_until_converged()
        series = artemis.monitoring.fraction_series(P("10.0.0.0/23"))
        assert series
        # The curve ends fully legitimate after mitigation.
        assert series[-1][1] == 1.0
