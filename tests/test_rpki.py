"""Tests for RPKI ROAs, RFC 6811 validation, and ROV enforcement."""

import pytest

from repro.bgp.messages import Announcement
from repro.bgp.rpki import ROA, ROVFilter, RPKIRegistry, Validity
from repro.errors import BGPError
from repro.internet.network import Network, NetworkConfig
from repro.net.prefix import Prefix
from repro.testbed.scenario import HijackExperiment

from conftest import fast_network_config, fast_scenario, tiny_graph


def P(text):
    return Prefix.parse(text)


def A(prefix, origin, first_hop=3):
    return Announcement(P(prefix), (first_hop, origin))


class TestROA:
    def test_defaults_to_exact_length(self):
        roa = ROA(P("10.0.0.0/23"), 64500)
        assert roa.max_length == 23

    def test_max_length_validation(self):
        with pytest.raises(BGPError):
            ROA(P("10.0.0.0/23"), 64500, max_length=22)
        with pytest.raises(BGPError):
            ROA(P("10.0.0.0/23"), 64500, max_length=33)

    def test_matches(self):
        roa = ROA(P("10.0.0.0/23"), 64500, max_length=24)
        assert roa.matches(A("10.0.0.0/23", 64500))
        assert roa.matches(A("10.0.1.0/24", 64500))
        assert not roa.matches(A("10.0.0.0/23", 666))     # wrong origin
        assert not roa.matches(A("10.0.0.0/25", 64500))   # too long
        assert not roa.matches(A("10.0.2.0/24", 64500))   # not covered


class TestRegistry:
    def make(self):
        registry = RPKIRegistry()
        registry.add_roa(ROA(P("10.0.0.0/23"), 64500, max_length=24))
        return registry

    def test_valid(self):
        assert self.make().validate(A("10.0.0.0/23", 64500)) is Validity.VALID
        assert self.make().validate(A("10.0.1.0/24", 64500)) is Validity.VALID

    def test_invalid_wrong_origin(self):
        assert self.make().validate(A("10.0.0.0/23", 666)) is Validity.INVALID

    def test_invalid_too_specific(self):
        assert self.make().validate(A("10.0.0.0/25", 64500)) is Validity.INVALID

    def test_not_found(self):
        assert self.make().validate(A("99.0.0.0/16", 666)) is Validity.NOT_FOUND

    def test_multiple_roas_any_match_is_valid(self):
        registry = self.make()
        registry.add_roa(ROA(P("10.0.0.0/23"), 666))  # MOAS authorisation
        assert registry.validate(A("10.0.0.0/23", 666)) is Validity.VALID
        assert registry.validate(A("10.0.0.0/23", 64500)) is Validity.VALID

    def test_duplicate_rejected(self):
        registry = self.make()
        with pytest.raises(BGPError):
            registry.add_roa(ROA(P("10.0.0.0/23"), 64500, max_length=24))

    def test_remove(self):
        registry = self.make()
        registry.remove_roa(ROA(P("10.0.0.0/23"), 64500, max_length=24))
        assert len(registry) == 0
        assert registry.validate(A("10.0.0.0/23", 666)) is Validity.NOT_FOUND
        with pytest.raises(BGPError):
            registry.remove_roa(ROA(P("10.0.0.0/23"), 64500, max_length=24))

    def test_covering_roas(self):
        registry = self.make()
        registry.add_roa(ROA(P("10.0.0.0/8"), 1))
        assert len(registry.covering_roas(P("10.0.0.0/24"))) == 2

    def test_rov_filter(self):
        registry = self.make()
        rov = ROVFilter(registry)
        assert rov.accepts(A("10.0.0.0/23", 64500))
        assert rov.accepts(A("99.0.0.0/16", 666))        # not-found passes
        assert not rov.accepts(A("10.0.0.0/23", 666))    # invalid dropped


class TestROVInNetwork:
    def test_full_adoption_blocks_exact_hijack(self):
        config = fast_network_config()
        config.rov_adoption = 1.0
        net = Network(tiny_graph(), config=config, seed=1)
        assert net.rov_adopters == set(net.asns())
        net.rpki.add_roa(ROA(P("10.0.0.0/23"), 6, max_length=24))
        net.announce(6, "10.0.0.0/23")
        net.run_until_converged()
        assert net.fraction_routing_to("10.0.0.1", 6) == 1.0
        net.announce(7, "10.0.0.0/23")  # invalid at every adopter
        net.run_until_converged()
        hijacked = net.ases_routing_to("10.0.0.1", 7)
        assert hijacked == [7]  # only the hijacker itself

    def test_rov_cannot_stop_forged_path(self):
        # Type-1: the forged path ends at the legitimate origin → VALID.
        config = fast_network_config()
        config.rov_adoption = 1.0
        net = Network(tiny_graph(), config=config, seed=1)
        net.rpki.add_roa(ROA(P("10.0.0.0/23"), 6, max_length=24))
        net.speaker(7).originate_forged(P("10.0.0.0/23"), (6,))
        net.run_until_converged()
        infected = [
            asn
            for asn in net.asns()
            if asn != 7
            and (route := net.speaker(asn).best_route(P("10.0.0.0/23"))) is not None
            and 7 in route.as_path
        ]
        assert infected, "ROV must not stop a forged-origin announcement"

    def test_adoption_validated(self):
        import pytest as _pytest
        from repro.errors import SimulationError

        with _pytest.raises(SimulationError):
            NetworkConfig(rov_adoption=1.5)


class TestROVScenario:
    def test_adoption_shrinks_hijack(self):
        peaks = {}
        for adoption in (0.0, 1.0):
            config = fast_scenario(
                seed=11,
                rov_adoption=adoption,
                auto_mitigate=False,
                observation_window=150.0,
                detection_timeout=300.0,
            )
            result = HijackExperiment(config).run()
            peaks[adoption] = result.hijack_fraction_peak
        assert peaks[1.0] < peaks[0.0] / 3

    def test_roa_published_for_victim(self):
        config = fast_scenario(seed=11, rov_adoption=0.5)
        experiment = HijackExperiment(config)
        experiment.setup()
        roas = experiment.network.rpki.covering_roas(P("10.0.0.0/23"))
        assert len(roas) == 1
        assert roas[0].origin_asn == experiment.victim.asn
        assert roas[0].max_length == 24

    def test_mitigation_deaggregation_stays_valid_under_rov(self):
        # The victim's /24s must be VALID (ROA max_length 24) so ROV
        # adopters accept the mitigation announcements.
        config = fast_scenario(seed=11, rov_adoption=0.5)
        result = HijackExperiment(config).run()
        assert result.mitigated
