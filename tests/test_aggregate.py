"""Tests for prefix-set aggregation."""

from hypothesis import given, strategies as st

from repro.net.aggregate import (
    aggregate,
    covers_same_space,
    merge_siblings,
    remove_covered,
)
from repro.net.prefix import Prefix


def P(text):
    return Prefix.parse(text)


class TestRemoveCovered:
    def test_drops_more_specifics(self):
        result = remove_covered([P("10.0.0.0/23"), P("10.0.0.0/24"), P("10.0.1.0/24")])
        assert result == [P("10.0.0.0/23")]

    def test_keeps_disjoint(self):
        prefixes = [P("10.0.0.0/24"), P("10.0.2.0/24")]
        assert remove_covered(prefixes) == prefixes

    def test_deduplicates(self):
        assert remove_covered([P("10.0.0.0/24"), P("10.0.0.0/24")]) == [P("10.0.0.0/24")]

    def test_empty(self):
        assert remove_covered([]) == []


class TestMergeSiblings:
    def test_merges_halves(self):
        assert merge_siblings([P("10.0.0.0/24"), P("10.0.1.0/24")]) == [P("10.0.0.0/23")]

    def test_merges_recursively(self):
        quarters = [
            P("10.0.0.0/24"), P("10.0.1.0/24"), P("10.0.2.0/24"), P("10.0.3.0/24")
        ]
        assert merge_siblings(quarters) == [P("10.0.0.0/22")]

    def test_non_siblings_untouched(self):
        # Adjacent but not complementary halves of the same parent.
        prefixes = [P("10.0.1.0/24"), P("10.0.2.0/24")]
        assert merge_siblings(prefixes) == prefixes

    def test_mixed_lengths(self):
        result = merge_siblings([P("10.0.0.0/24"), P("10.0.1.0/25"), P("10.0.1.128/25")])
        assert result == [P("10.0.0.0/23")]


class TestAggregate:
    def test_deaggregation_roundtrip(self):
        prefix = P("10.0.0.0/22")
        assert aggregate(prefix.deaggregate(25)) == [prefix]

    def test_covered_plus_siblings(self):
        result = aggregate(
            [P("10.0.0.0/23"), P("10.0.0.0/24"), P("10.0.1.0/24"), P("10.0.2.0/24")]
        )
        assert result == [P("10.0.0.0/23"), P("10.0.2.0/24")]

    def test_covers_same_space(self):
        assert covers_same_space(
            [P("10.0.0.0/24"), P("10.0.1.0/24")], [P("10.0.0.0/23")]
        )
        assert not covers_same_space([P("10.0.0.0/24")], [P("10.0.0.0/23")])

    def test_v4_v6_do_not_merge(self):
        prefixes = [P("10.0.0.0/24"), P("2001:db8::/48")]
        assert aggregate(prefixes) == sorted(prefixes)


@st.composite
def prefix_sets(draw):
    count = draw(st.integers(min_value=1, max_value=12))
    prefixes = []
    for _ in range(count):
        value = draw(st.integers(min_value=0, max_value=(1 << 16) - 1)) << 16
        length = draw(st.integers(min_value=8, max_value=26))
        prefixes.append(Prefix(value, length, 4))
    return prefixes


@given(prefix_sets())
def test_aggregate_idempotent(prefixes):
    once = aggregate(prefixes)
    assert aggregate(once) == once


@given(prefix_sets())
def test_aggregate_never_grows(prefixes):
    assert len(aggregate(prefixes)) <= len(set(prefixes))


@given(prefix_sets())
def test_aggregate_preserves_membership(prefixes):
    aggregated = aggregate(prefixes)
    # Every input prefix is covered by some aggregate.
    for prefix in prefixes:
        assert any(agg.contains(prefix) for agg in aggregated)
    # Every aggregate is fully decomposable into input coverage: its
    # address count never exceeds what the inputs covered (exactness).
    input_space = sum(p.num_addresses for p in remove_covered(prefixes))
    output_space = sum(p.num_addresses for p in aggregated)
    assert output_space == input_space
