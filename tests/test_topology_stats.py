"""Tests for topology analysis helpers."""

import pytest

from repro.topology.generator import GeneratorConfig, generate_internet
from repro.topology.stats import (
    average_path_length,
    cone_sizes,
    customer_cone,
    degree_histogram,
    summarize_topology,
    tier_sizes,
    undirected_path_lengths,
)

from conftest import tiny_graph


class TestTinyGraphStats:
    def test_degree_histogram_counts_everyone(self, graph7):
        histogram = degree_histogram(graph7)
        assert sum(histogram.values()) == 7

    def test_tier_sizes(self, graph7):
        assert tier_sizes(graph7) == {1: 2, 2: 3, 3: 2}

    def test_customer_cone_of_stub_is_itself(self, graph7):
        assert customer_cone(graph7, 6) == {6}
        assert customer_cone(graph7, 7) == {7}

    def test_customer_cone_descends(self, graph7):
        assert customer_cone(graph7, 3) == {3, 6}
        assert customer_cone(graph7, 1) == {1, 3, 4, 6, 7}

    def test_cone_sizes(self, graph7):
        sizes = cone_sizes(graph7)
        assert sizes[6] == 1
        assert sizes[1] == 5
        # Tier-1s dominate stubs.
        assert sizes[1] > sizes[3] > sizes[6]

    def test_path_lengths(self, graph7):
        distances = undirected_path_lengths(graph7, 6)
        assert distances[6] == 0
        assert distances[3] == 1
        assert distances[1] == 2
        assert len(distances) == 7  # connected

    def test_average_path_length_positive(self, graph7):
        apl = average_path_length(graph7)
        assert 1.0 < apl < 4.0

    def test_summary_keys(self, graph7):
        summary = summarize_topology(graph7)
        assert summary["ases"] == 7
        assert summary["links"] == graph7.link_count()
        assert summary["largest_cone"] == 5


class TestGeneratedTopologyShape:
    @pytest.fixture(scope="class")
    def generated(self):
        return generate_internet(
            GeneratorConfig(num_tier1=5, num_tier2=20, num_stubs=80), seed=4
        )

    def test_tier1_cones_cover_most_of_internet(self, generated):
        sizes = cone_sizes(generated)
        tier1 = generated.tier1()
        biggest = max(sizes[asn] for asn in tier1)
        assert biggest > len(generated) * 0.3

    def test_stub_cones_are_one(self, generated):
        for asn in generated.stubs():
            assert cone_sizes(generated)[asn] == 1
            break  # one spot check is enough; full check is O(n^2)

    def test_realistic_average_path_length(self, generated):
        # Hierarchical Internets are small worlds: a few hops.
        apl = average_path_length(generated, sample=15)
        assert 1.5 < apl < 5.0

    def test_degree_skew(self, generated):
        histogram = degree_histogram(generated)
        degrees = sorted(histogram)
        # Many low-degree stubs, few high-degree hubs.
        assert histogram.get(degrees[0], 0) > 0
        assert degrees[-1] > 10
