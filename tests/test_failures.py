"""Failure-injection tests: sessions dying, peers vanishing, mid-flight loss."""

import pytest

from repro.errors import TopologyError
from repro.net.prefix import Prefix


def P(text):
    return Prefix.parse(text)


class TestLinkFailure:
    def test_routes_heal_around_failed_link(self, net7):
        # AS7 multihomes to 4 and 5; losing one upstream must not cut it off.
        net7.announce(6, "10.0.0.0/23")
        net7.run_until_converged()
        route_before = net7.speaker(7).best_route(P("10.0.0.0/23"))
        assert route_before is not None
        primary = route_before.peer_asn
        net7.fail_link(7, primary)
        net7.run_until_converged()
        route_after = net7.speaker(7).best_route(P("10.0.0.0/23"))
        assert route_after is not None
        assert route_after.peer_asn != primary

    def test_single_homed_stub_goes_dark(self, net7):
        # AS6's only upstream is AS3: failing it removes all routes.
        net7.announce(7, "10.9.0.0/24")
        net7.run_until_converged()
        assert net7.speaker(6).best_route(P("10.9.0.0/24")) is not None
        net7.fail_link(6, 3)
        net7.run_until_converged()
        assert net7.speaker(6).best_route(P("10.9.0.0/24")) is None

    def test_withdrawals_propagate_after_origin_cut(self, net7):
        # Cut the victim's only upstream: the whole Internet must lose the route.
        net7.announce(6, "10.0.0.0/23")
        net7.run_until_converged()
        net7.fail_link(6, 3)
        net7.run_until_converged()
        for asn in net7.asns():
            if asn == 6:
                continue
            assert net7.speaker(asn).best_route(P("10.0.0.0/23")) is None

    def test_unknown_link_rejected(self, net7):
        with pytest.raises(TopologyError):
            net7.fail_link(6, 7)  # no direct session in the tiny graph

    def test_messages_in_flight_dropped(self, net7):
        # Announce, then fail the link before the update is delivered: the
        # far side never learns the route, and no crash occurs.
        net7.announce(6, "10.0.0.0/23")  # queued towards AS3
        net7.fail_link(6, 3)
        net7.run_until_converged()
        assert net7.speaker(3).best_route(P("10.0.0.0/23")) is None

    def test_hijack_mitigated_even_with_failed_lateral_link(self, net7):
        # Failing the 3–4 peering removes a shortcut but strands nobody;
        # hijack and mitigation must still work end to end.
        net7.announce(6, "10.0.0.0/23")
        net7.run_until_converged()
        net7.fail_link(3, 4)
        net7.run_until_converged()
        net7.announce(7, "10.0.0.0/23")
        net7.run_until_converged()
        net7.announce(6, "10.0.0.0/24")
        net7.announce(6, "10.0.1.0/24")
        net7.run_until_converged()
        assert net7.fraction_routing_to("10.0.0.9", 6) == 1.0


class TestLinkRestoration:
    def test_routes_return_after_restore(self, net7):
        net7.announce(7, "10.9.0.0/24")
        net7.run_until_converged()
        net7.fail_link(6, 3)
        net7.run_until_converged()
        assert net7.speaker(6).best_route(P("10.9.0.0/24")) is None
        net7.restore_link(6, 3)
        net7.run_until_converged()
        # Full-table exchange on session-up brings the route back.
        assert net7.speaker(6).best_route(P("10.9.0.0/24")) is not None

    def test_restore_up_session_rejected(self, net7):
        from repro.errors import TopologyError
        import pytest as _pytest

        with _pytest.raises(TopologyError):
            net7.restore_link(6, 3)

    def test_restore_preserves_relationship(self, net7):
        from repro.bgp.policy import Relationship

        net7.fail_link(7, 4)
        net7.run_until_converged()
        net7.restore_link(7, 4)
        assert net7.speaker(7).peers[4].relationship is Relationship.PROVIDER
        assert net7.speaker(4).peers[7].relationship is Relationship.CUSTOMER

    def test_flap_cycle_converges_cleanly(self, net7):
        net7.announce(6, "10.0.0.0/23")
        net7.run_until_converged()
        for _ in range(3):
            net7.fail_link(3, 4)
            net7.run_until_converged()
            net7.restore_link(3, 4)
            net7.run_until_converged()
        assert net7.fraction_routing_to("10.0.0.1", 6) == 1.0


class TestSessionSemantics:
    def test_deliver_after_remove_peer_ignored(self, net7):
        # Removing the peer while a message is in flight must not raise.
        net7.announce(6, "10.0.0.0/23")
        net7.speaker(3).remove_peer(6)
        net7.run_until_converged()
        assert net7.speaker(3).best_route(P("10.0.0.0/23")) is None

    def test_restore_allows_traffic_again(self, net7):
        session = net7._find_session(6, 3)
        session.tear_down()
        assert not session.up
        session.restore()
        net7.announce(6, "10.0.0.0/23")
        net7.run_until_converged()
        assert net7.speaker(3).best_route(P("10.0.0.0/23")) is not None
