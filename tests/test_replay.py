"""Recorded-trace replay: format, digest identity, and the clock seams.

The contract under test (see DESIGN.md "Trace format"):

* a trace written by :class:`TraceRecorder` round-trips bit-exactly
  through :func:`load_trace`, and damage (truncation, edits, bad counts)
  is a clean :class:`TraceError`, never a hang or a silent partial load;
* replaying a recorded run — flat-out or paced at any speed — reproduces
  the live run's alert sequence digest, per-source detection delays, and
  monitoring lag tables *exactly* (the event-time contract);
* the supervisor under replay measures staleness in recorded time: a
  flat-out replay never false-fails a healthy source, a paused replay
  cannot age one into DEAD, and a recorded outage plan still produces the
  DEAD → LIVE transition sequence;
* byte-identical duplicate deliveries (a ``dup`` fault on the replay
  path) never found new incidents or re-key first evidence.
"""

from __future__ import annotations

import io

import pytest

from conftest import fast_scenario
from repro.core.alerts import AlertManager, AlertType
from repro.faults import Fault, FaultPlan
from repro.feeds.events import ANNOUNCE, FeedEvent
from repro.feeds.replay import (
    ReplayClock,
    ReplaySession,
    ReplayTap,
    TraceError,
    TraceWriter,
    VirtualTimer,
    alert_sequence_digest,
    load_trace,
)
from repro.net.prefix import Prefix
from repro.testbed.scenario import HijackExperiment

PREFIX = Prefix.parse("10.0.0.0/23")


def make_events(count: int = 6, source: str = "ris") -> list:
    return [
        FeedEvent(
            source=source,
            collector=f"{source}-rrc0",
            vantage_asn=100 + i,
            kind=ANNOUNCE,
            prefix=PREFIX,
            as_path=(100 + i, 666),
            observed_at=float(i),
            delivered_at=float(i) + 0.5,
        )
        for i in range(count)
    ]


# ------------------------------------------------------------- trace format


class TestTraceFormat:
    def test_roundtrip_preserves_events_and_meta(self, tmp_path):
        path = str(tmp_path / "t.trace")
        events = make_events()
        with TraceWriter(path, meta={"seed": 7}) as writer:
            for event in events:
                writer.append(event)
            writer.close(meta={"hijack_time": 2.5})
        trace = load_trace(path)
        assert len(trace.events) == len(events)
        for original, loaded in zip(events, trace.events):
            assert loaded.content_key() == original.content_key()
        assert trace.meta["seed"] == 7
        assert trace.hijack_time == 2.5
        assert trace.source_names() == ("ris",)

    def test_truncated_trace_is_a_clean_error(self, tmp_path):
        path = str(tmp_path / "t.trace")
        with TraceWriter(path) as writer:
            for event in make_events():
                writer.append(event)
            writer.close()
        lines = open(path, encoding="utf-8").read().splitlines(keepends=True)
        cut = str(tmp_path / "cut.trace")
        with open(cut, "w", encoding="utf-8") as handle:
            handle.writelines(lines[:-2])  # drop footer and one record
        with pytest.raises(TraceError, match="truncated"):
            load_trace(cut)

    def test_corrupt_record_fails_digest_check(self, tmp_path):
        path = str(tmp_path / "t.trace")
        with TraceWriter(path) as writer:
            for event in make_events():
                writer.append(event)
            writer.close()
        lines = open(path, encoding="utf-8").read().splitlines(keepends=True)
        lines[3] = lines[3].replace("666", "667")
        bad = str(tmp_path / "bad.trace")
        with open(bad, "w", encoding="utf-8") as handle:
            handle.writelines(lines)
        with pytest.raises(TraceError, match="digest"):
            load_trace(bad)

    def test_wrong_record_count_rejected(self):
        buffer = io.StringIO()
        writer = TraceWriter(buffer)
        for event in make_events(3):
            writer.append(event)
        writer.records = 99  # lie in the footer
        writer.close()
        with pytest.raises(TraceError, match="99"):
            load_trace(io.StringIO(buffer.getvalue()))

    def test_missing_header_rejected(self):
        with pytest.raises(TraceError, match="header"):
            load_trace(io.StringIO("not a trace\n"))

    def test_future_version_rejected(self):
        buffer = io.StringIO()
        writer = TraceWriter(buffer)
        writer.close()
        text = buffer.getvalue().replace('"version": 1', '"version": 999')
        with pytest.raises(TraceError, match="version"):
            load_trace(io.StringIO(text))

    def test_embedded_config_roundtrips(self, tmp_path):
        from repro.core.config import ArtemisConfig, OwnedPrefix

        config = ArtemisConfig(owned=[OwnedPrefix(PREFIX, {64500})])
        path = str(tmp_path / "t.trace")
        with TraceWriter(path, config=config) as writer:
            writer.close()
        trace = load_trace(path)
        assert trace.config is not None
        assert [str(entry.prefix) for entry in trace.config.owned] == [str(PREFIX)]


# ------------------------------------------------- recorded live experiment


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    """One fast live run, recorded; plus the live-side reference numbers."""
    # Seed 4 is deliberate: the live run raises *two* alert objects for one
    # incident pattern (post-resolve straggler evidence under cooldown 0),
    # which the replay — no mitigation, so no resolve — folds into one.
    # The digest must be invariant to exactly that bookkeeping difference.
    path = str(tmp_path_factory.mktemp("trace") / "fast.trace")
    experiment = HijackExperiment(fast_scenario(seed=4, record_trace=path))
    result = experiment.run()
    assert result.detection_delay is not None  # the comparisons must bite
    return {
        "path": path,
        "result": result,
        "live_digest": alert_sequence_digest(experiment.artemis.alerts),
        "live_lag": experiment.artemis.monitoring.mean_lag_by_source(),
        "live_fraction": experiment.artemis.monitoring.fraction_series(PREFIX),
    }


@pytest.fixture(scope="module")
def unrecorded_result():
    """The same run without the recorder: recording must be a no-op."""
    return HijackExperiment(fast_scenario(seed=4)).run()


class TestRecordedReplay:
    def test_recording_does_not_perturb_the_live_run(
        self, recorded, unrecorded_result
    ):
        with_tap = recorded["result"]
        without = unrecorded_result
        assert with_tap.detection_delay == without.detection_delay
        assert with_tap.total_time == without.total_time
        assert with_tap.per_source_delay_final == without.per_source_delay_final
        assert with_tap.source_lag == without.source_lag

    def test_flat_out_replay_is_digest_identical(self, recorded):
        session = ReplaySession(recorded["path"])
        report = session.run()
        assert report["finished"]
        assert report["alert_digest"] == recorded["live_digest"]
        assert report["detection_delay"] == recorded["result"].detection_delay
        assert (
            report["per_source_delay_final"]
            == recorded["result"].per_source_delay_final
        )
        assert report["mean_lag_by_source"] == recorded["live_lag"]

    def test_paced_replay_matches_flat_out_bit_for_bit(self, recorded):
        # The monitoring-lag and digest arithmetic is event-time only, so
        # 1x, 10x, and flat-out replays of one trace must agree exactly.
        timer_1x, timer_10x = VirtualTimer(), VirtualTimer()
        at_1x = ReplaySession(recorded["path"], speed=1.0, timer=timer_1x)
        at_10x = ReplaySession(recorded["path"], speed=10.0, timer=timer_10x)
        flat = ReplaySession(recorded["path"])
        report_1x, report_10x, report_flat = at_1x.run(), at_10x.run(), flat.run()
        assert (
            report_1x["alert_digest"]
            == report_10x["alert_digest"]
            == report_flat["alert_digest"]
            == recorded["live_digest"]
        )
        assert (
            report_1x["mean_lag_by_source"]
            == report_10x["mean_lag_by_source"]
            == report_flat["mean_lag_by_source"]
        )
        assert (
            at_1x.monitoring.fraction_series(PREFIX)
            == at_10x.monitoring.fraction_series(PREFIX)
            == flat.monitoring.fraction_series(PREFIX)
            == recorded["live_fraction"]
        )
        # Pacing itself still scales with speed: 10x sleeps ~10x less.
        assert timer_1x.slept > timer_10x.slept > 0

    def test_session_without_config_requires_explicit_one(self, tmp_path):
        path = str(tmp_path / "bare.trace")
        with TraceWriter(path) as writer:  # no embedded config
            for event in make_events():
                writer.append(event)
            writer.close()
        with pytest.raises(TraceError, match="config"):
            ReplaySession(path)

    def test_replay_is_resumable(self, recorded):
        session = ReplaySession(recorded["path"])
        session.run(max_events=10)
        assert not session.tap.finished
        assert session.tap.records_read == 10
        report = session.run()
        assert report["finished"]
        assert report["alert_digest"] == recorded["live_digest"]


# ------------------------------------------------- supervisor clock seams


class TestReplaySupervision:
    def test_flat_out_replay_never_false_fails_a_source(self, recorded):
        # Hours of recorded quiet drain in milliseconds; staleness runs on
        # the replay clock, so nothing may be declared DEAD.
        session = ReplaySession(
            recorded["path"],
            supervise=True,
            supervision=dict(check_interval=5.0, staleness_timeout=30.0),
        )
        report = session.run()
        assert report["supervisor_transitions"] == []
        assert all(
            entry["state"] == "live" for entry in report["source_report"].values()
        )

    def test_paused_replay_does_not_age_sources_into_dead(self, recorded):
        session = ReplaySession(
            recorded["path"],
            supervise=True,
            supervision=dict(check_interval=5.0, staleness_timeout=10.0),
        )
        session.run(max_events=20)
        # The operator walks away; wall time passes, the replay clock does
        # not.  However often supervision fires, nothing may die.
        for _ in range(50):
            session.supervisor.check_now()
        assert session.supervisor.dead_sources() == ()
        assert session.supervisor.transitions == []

    def test_recorded_outage_produces_dead_then_live(self, recorded):
        trace = load_trace(recorded["path"])
        hijack = trace.hijack_time
        span_end = trace.events[-1].delivered_at
        window = min(120.0, span_end - hijack - 30.0)
        plan = FaultPlan(
            [Fault("outage", "ris", at=5.0, duration=window)], name="ris-out"
        )
        session = ReplaySession(
            recorded["path"],
            faults=plan,
            supervise=True,
            supervision=dict(
                check_interval=5.0, staleness_timeout=10.0, backoff_base=1.0
            ),
        )
        report = session.run()
        states = [
            (source, state)
            for _when, source, state in report["supervisor_transitions"]
        ]
        assert ("ris", "dead") in states
        assert ("ris", "live") in states
        assert states.index(("ris", "dead")) < states.index(("ris", "live"))
        assert report["events_dropped"] > 0
        assert report["source_report"]["ris"]["outages"] >= 1
        assert report["source_report"]["ris"]["state"] == "live"


# ------------------------------------------- duplicate-delivery idempotence


class TestDuplicateReplayIdempotence:
    def test_dup_heavy_replay_does_not_duplicate_alerts(self, recorded):
        clean = ReplaySession(recorded["path"]).run()
        plan = FaultPlan(
            [
                Fault("dup", target, at=0.0, duration=100000.0, probability=1.0)
                for target in ("ris", "bgpmon", "periscope")
            ],
            name="dup-everything",
        )
        session = ReplaySession(recorded["path"], faults=plan)
        report = session.run()
        # Every event delivered twice, byte-identically: the incident list,
        # its timing, and the first-evidence table must not move.
        assert report["alerts"] == clean["alerts"]
        assert report["detection_delay"] == clean["detection_delay"]
        assert report["per_source_delay_final"] == clean["per_source_delay_final"]
        assert report["duplicate_events_skipped"] > 0
        assert session.detection.duplicate_events_skipped > 0

    def test_duplicate_cannot_found_an_incident(self):
        manager = AlertManager(cooldown=5.0)
        event = make_events(1)[0]
        owned, announced = PREFIX, PREFIX
        alert, is_new = manager.ingest(
            AlertType.EXACT_ORIGIN, owned, announced, 666, event, allow_new=False
        )
        assert alert is None and not is_new
        assert len(manager) == 0

    def test_duplicate_still_attaches_to_active_incident(self):
        manager = AlertManager(cooldown=5.0)
        event = make_events(1)[0]
        alert, is_new = manager.ingest(
            AlertType.EXACT_ORIGIN, PREFIX, PREFIX, 666, event
        )
        assert is_new
        again, is_new = manager.ingest(
            AlertType.EXACT_ORIGIN, PREFIX, PREFIX, 666, event, allow_new=False
        )
        assert again is alert and not is_new
        assert len(alert.evidence) == 2

    def test_duplicate_cannot_resurrect_a_resolved_incident(self):
        manager = AlertManager(cooldown=1.0)
        events = make_events(6)
        alert, _ = manager.ingest(
            AlertType.EXACT_ORIGIN, PREFIX, PREFIX, 666, events[0]
        )
        alert.resolve(events[0].delivered_at)
        # A reordered byte-identical copy surfaces long past the cooldown:
        # without allow_new gating this would refire the incident.
        late = events[5]
        refired, is_new = manager.ingest(
            AlertType.EXACT_ORIGIN, PREFIX, PREFIX, 666, late, allow_new=False
        )
        assert refired is None and not is_new
        assert len(manager) == 1


# ------------------------------------------------------------ replay pieces


class TestReplayTapMechanics:
    def test_clock_is_monotone(self):
        clock = ReplayClock(10.0)
        clock.advance(5.0)
        assert clock.now == 10.0
        clock.advance(12.5)
        assert clock.now == 12.5

    def test_tap_filters_by_subscription_interest(self):
        tap = ReplayTap(make_events())
        seen = []
        tap.subscribe(seen.append, prefixes=[Prefix.parse("192.0.2.0/24")])
        tap.run()
        assert seen == []
        assert tap.events_filtered == len(tap.events)

    def test_unexpressible_fault_kinds_are_reported_not_silent(self):
        plan = FaultPlan(
            [Fault("delay", "ris", at=0.0, duration=10.0, factor=3.0)]
        )
        tap = ReplayTap(make_events(), faults=plan, arm_at=0.0)
        assert tap.injector.skipped == ["delay:ris"]
