"""Shared fixtures: small, fast worlds for integration tests."""

from __future__ import annotations

import pytest

from repro.internet.network import Network, NetworkConfig
from repro.sim.latency import Constant, Uniform
from repro.testbed.scenario import ScenarioConfig
from repro.topology.generator import GeneratorConfig, generate_internet
from repro.topology.graph import ASGraph


def tiny_graph() -> ASGraph:
    """A hand-built 7-AS topology with known structure::

            1 ===== 2          (tier-1 peering clique)
           / \\     / \\
          3   4   5            (tier-2 transit; 3-4 peer laterally)
         /     \\ / \\
        6       7   (7 buys from 4 and 5)
    """
    graph = ASGraph()
    for asn, tier in [(1, 1), (2, 1), (3, 2), (4, 2), (5, 2), (6, 3), (7, 3)]:
        graph.add_as(asn, tier=tier)
    graph.add_peering(1, 2)
    graph.add_customer_provider(3, 1)
    graph.add_customer_provider(4, 1)
    graph.add_customer_provider(5, 2)
    graph.add_peering(3, 4)
    graph.add_customer_provider(6, 3)
    graph.add_customer_provider(7, 4)
    graph.add_customer_provider(7, 5)
    graph.validate()
    return graph


def fast_network_config() -> NetworkConfig:
    """Deterministic-ish fast timing: tiny processing, no MRAI batching."""
    return NetworkConfig(
        processing_delay=Constant(0.05),
        mrai=Constant(0.5),
        session_delay_override=Constant(0.02),
    )


def fast_scenario(seed: int = 0, **overrides) -> ScenarioConfig:
    """A small, churn-free scenario that runs in tens of milliseconds."""
    defaults = dict(
        seed=seed,
        topology=GeneratorConfig(num_tier1=3, num_tier2=10, num_stubs=25),
        churn=None,
        baseline_settle=60.0,
        churn_warmup=0.0,
        monitors=dict(
            num_ris_vantages=6,
            num_bgpmon_vantages=4,
            num_lgs=4,
            lg_poll_interval=30.0,
            num_batch_vantages=4,
        ),
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


@pytest.fixture
def graph7() -> ASGraph:
    return tiny_graph()


@pytest.fixture
def net7(graph7) -> Network:
    return Network(graph7, config=fast_network_config(), seed=42)


@pytest.fixture
def gen_network() -> Network:
    graph = generate_internet(
        GeneratorConfig(num_tier1=3, num_tier2=10, num_stubs=25), seed=5
    )
    return Network(graph, config=fast_network_config(), seed=5)
